"""Fault tolerance for sweeps: retries, timeouts, checkpoint/resume.

A production-scale exploration sweeps orders of magnitude more
configurations than the paper's ``T x L x S x B`` grid, and at that scale
partial failure is the normal case: a worker process dies, a chunk wedges
on a pathological geometry, the whole sweep is killed and restarted.
This module supplies the three pieces :class:`~repro.engine.parallel.ParallelSweep`
composes into a fault-tolerant executor:

* :class:`RetryPolicy` -- per-chunk retry with exponential backoff and
  *deterministic* jitter (seeded, so two runs of the same sweep back off
  identically and tests are reproducible);
* :class:`SweepCheckpoint` -- an append-only JSONL journal of completed
  ``(index, PerformanceEstimate)`` chunks.  Every record is flushed and
  fsynced, so a sweep killed at any point restarts exactly where it
  stopped; a torn trailing line (the signature of a mid-write kill) is
  tolerated and ignored.  The journal is bound to a
  :func:`sweep_fingerprint` of the workload, backend and configuration
  list, so resuming against a *different* sweep fails loudly instead of
  silently mixing results;
* :class:`ResilienceOptions` -- the single bundle threaded from the CLI
  flags (``--checkpoint`` / ``--resume`` / ``--chunk-timeout`` /
  ``--max-retries``) down through every exploration layer.

Failure classification is the contract between this module and the
executor: :class:`TransientChunkError` (and its subclasses, including the
fault harness's :class:`~repro.engine.faults.InjectedCrash`) marks a chunk
worth re-dispatching; anything else raised by an evaluator is
deterministic and surfaces immediately as a :class:`SweepChunkError`
naming the failing chunk's configurations.

Checkpoint schema (``repro.checkpoint/1``), one JSON object per line::

    {"schema": "repro.checkpoint/1", "fingerprint": "<sha256>", "configs": N}
    {"chunk": [[index, {estimate...}], ...]}

Estimates round-trip exactly -- :func:`estimate_to_json` keeps every
field, including the energy breakdown, and JSON floats serialise via
``repr`` -- so a resumed sweep's result table is bit-identical to an
uninterrupted run (asserted by the test suite for arbitrary kill points).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.energy.model import EnergyBreakdown
from repro.obs.metrics import get_metrics

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointMismatchError",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorruptPayloadError",
    "ResilienceOptions",
    "RetryPolicy",
    "SweepCancelledError",
    "SweepCheckpoint",
    "SweepChunkError",
    "TransientChunkError",
    "estimate_from_json",
    "estimate_to_json",
    "load_checkpoint_estimates",
    "sweep_fingerprint",
]

logger = logging.getLogger(__name__)

CHECKPOINT_SCHEMA = "repro.checkpoint/1"
_CHECKPOINT_SCHEMA_PREFIX = "repro.checkpoint/"
_CHECKPOINT_SCHEMA_VERSION = 1


def _check_journal_schema(header: Any, path: str) -> None:
    """Raise :class:`CheckpointError` unless the header's schema is ours.

    A journal written by a *newer* repro (``repro.checkpoint/2`` and up)
    is named as such -- "upgrade or start over" is a far better failure
    than the generic not-a-journal error (or a ``KeyError`` from blindly
    indexing fields the old reader does not know).
    """
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema == CHECKPOINT_SCHEMA:
        return
    if isinstance(schema, str) and schema.startswith(
        _CHECKPOINT_SCHEMA_PREFIX
    ):
        suffix = schema[len(_CHECKPOINT_SCHEMA_PREFIX):]
        if suffix.isdigit() and int(suffix) > _CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path} uses schema {schema}, newer than the "
                f"{CHECKPOINT_SCHEMA} this version reads; upgrade repro or "
                "delete the journal to start over"
            )
    raise CheckpointError(f"{path} is not a {CHECKPOINT_SCHEMA} journal")


class TransientChunkError(RuntimeError):
    """A chunk failure worth retrying: crash, corruption, infrastructure.

    The executor re-dispatches chunks that fail with this (or a subclass,
    or a broken pool / timeout) up to :attr:`RetryPolicy.max_retries`
    times before degrading to in-parent serial evaluation.  Any *other*
    exception is treated as a deterministic evaluator bug and re-raised
    as :class:`SweepChunkError`.
    """


class CorruptPayloadError(TransientChunkError):
    """A worker returned a payload that fails structural validation."""


class SweepChunkError(RuntimeError):
    """A chunk failed deterministically; names the failing configurations."""

    def __init__(self, message: str, configs: Sequence[CacheConfig]) -> None:
        super().__init__(message)
        self.configs = list(configs)

    @classmethod
    def from_chunk(
        cls, indexed: Sequence[Tuple[int, CacheConfig]], cause: BaseException
    ) -> "SweepChunkError":
        configs = [config for _, config in indexed]
        labels = ", ".join(config.label(full=True) for config in configs)
        error = cls(
            f"sweep chunk failed on [{labels}]: "
            f"{type(cause).__name__}: {cause}",
            configs,
        )
        error.__cause__ = cause
        return error


class SweepCancelledError(RuntimeError):
    """The sweep was cancelled cooperatively before completing.

    Raised by the executor when its ``cancel_event`` is set (client
    cancellation or a job deadline).  The checkpoint journal is left
    intact, so a resubmission of the same sweep resumes from the last
    committed chunk instead of starting over.
    """

    def __init__(self, message: str, done: int = 0, total: int = 0) -> None:
        super().__init__(message)
        self.done = done
        self.total = total


class CircuitOpenError(RuntimeError):
    """A circuit breaker is open: the backend is failing, fail fast.

    Carries ``retry_after_s`` -- the cooldown remaining before the
    breaker will admit a half-open probe -- so callers (the serve layer)
    can surface an accurate retry hint instead of a blind guess.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = max(0.0, float(retry_after_s))


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one evaluator backend.

    State machine: ``closed`` (normal) -> ``open`` after
    ``failure_threshold`` *consecutive* recorded failures -> ``half_open``
    once ``cooldown_s`` has elapsed, admitting exactly one probe --
    success closes the breaker, failure re-opens it and restarts the
    cooldown.  Thread-safe; the clock is injectable so tests drive the
    cooldown deterministically.

    Transitions are observable as ``breaker.opened`` / ``breaker.closed``
    / ``breaker.half_open_probes`` counters; callers that refuse work on
    an open breaker should count ``breaker.fail_fast`` themselves.
    """

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request proceed?  Consumes the half-open probe slot.

        Closed: always.  Open: only once the cooldown has elapsed, which
        transitions to half-open and admits a single probe; further calls
        are refused until that probe reports success or failure.
        """
        with self._lock:
            if self._state == "closed":
                return True
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half_open"
                self._probe_in_flight = True
                get_metrics().counter("breaker.half_open_probes").inc()
                logger.info(
                    "breaker %s: cooldown elapsed, admitting half-open probe",
                    self.name,
                )
                return True
            # half_open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            get_metrics().counter("breaker.half_open_probes").inc()
            return True

    def record_success(self) -> None:
        """A request against the backend succeeded; reset/close."""
        with self._lock:
            if self._state != "closed":
                get_metrics().counter("breaker.closed").inc()
                logger.info("breaker %s: probe succeeded, closing", self.name)
            self._state = "closed"
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> bool:
        """A request failed; returns True when the breaker is now open."""
        with self._lock:
            self._failures += 1
            was_closed = self._state == "closed"
            if self._state == "half_open" or (
                was_closed and self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_in_flight = False
                get_metrics().counter("breaker.opened").inc()
                logger.warning(
                    "breaker %s: opened after %d consecutive failures "
                    "(cooldown %.1fs)",
                    self.name,
                    self._failures,
                    self.cooldown_s,
                )
            return self._state == "open"

    def retry_after_s(self) -> float:
        """Seconds until the breaker will next admit a probe (0 if now)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                0.0, self.cooldown_s - (self._clock() - self._opened_at)
            )


class CheckpointError(ValueError):
    """A checkpoint journal could not be used."""


class CheckpointMismatchError(CheckpointError):
    """The journal belongs to a different sweep (fingerprint mismatch)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay_s(attempt, token)`` doubles from ``backoff_base_s`` per
    attempt, caps at ``backoff_cap_s``, and adds up to ``jitter`` of the
    base delay drawn from a :class:`random.Random` seeded on
    ``(seed, attempt, token)`` -- so distinct chunks desynchronise (no
    thundering herd on retry) while identical runs stay reproducible.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay_s(self, attempt: int, token: Hashable = None) -> float:
        """Backoff before re-dispatch number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))
        rng = random.Random(repr((self.seed, attempt, token)))
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class ResilienceOptions:
    """Everything a fault-tolerant sweep needs, threaded as one object.

    ``checkpoint`` names the JSONL journal (written per completed chunk);
    ``resume`` loads it first and evaluates only what is missing.
    ``chunk_timeout_s`` bounds how long the executor waits without *any*
    chunk completing before declaring the in-flight chunks wedged and
    re-dispatching them.  ``fault_injector`` is the deterministic chaos
    harness (:class:`~repro.engine.faults.FaultInjector`) wrapped around
    worker dispatch -- tests and the nightly CI chaos job only.

    ``cancel_event`` is the cooperative kill switch: the executor polls
    it between dispatch rounds (and between serial chunks) and raises
    :class:`SweepCancelledError` when set, leaving the journal intact.
    ``breaker`` is an optional :class:`CircuitBreaker` fed one
    success/failure per chunk; when it opens mid-sweep the executor
    abandons the remaining work with :class:`CircuitOpenError`.
    """

    checkpoint: Optional[str] = None
    resume: bool = False
    chunk_timeout_s: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_injector: Optional[Any] = None
    cancel_event: Optional[threading.Event] = None
    breaker: Optional[CircuitBreaker] = None

    def __post_init__(self) -> None:
        if self.resume and not self.checkpoint:
            raise ValueError("resume requires a checkpoint path")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk timeout must be positive")


def estimate_to_json(estimate: PerformanceEstimate) -> Dict[str, Any]:
    """A JSON-compatible dict that round-trips the estimate *exactly*.

    Unlike :mod:`repro.core.serialize` (which drops the breakdown for
    compact result tables), the checkpoint keeps every field so resumed
    estimates compare equal to freshly computed ones.
    """
    breakdown = estimate.energy_breakdown
    return {
        "config": [
            estimate.config.size,
            estimate.config.line_size,
            estimate.config.ways,
            estimate.config.tiling,
        ],
        "miss_rate": estimate.miss_rate,
        "cycles": estimate.cycles,
        "energy_nj": estimate.energy_nj,
        "events": estimate.events,
        "accesses": estimate.accesses,
        "reads": estimate.reads,
        "read_miss_rate": estimate.read_miss_rate,
        "add_bs": estimate.add_bs,
        "conflict_free_layout": estimate.conflict_free_layout,
        "energy_breakdown": None
        if breakdown is None
        else {
            "e_dec": breakdown.e_dec,
            "e_cell": breakdown.e_cell,
            "e_io": breakdown.e_io,
            "e_main": breakdown.e_main,
            "hit_rate": breakdown.hit_rate,
            "miss_rate": breakdown.miss_rate,
            "events": breakdown.events,
        },
    }


def estimate_from_json(doc: Dict[str, Any]) -> PerformanceEstimate:
    """Rebuild an estimate written by :func:`estimate_to_json`."""
    breakdown_doc = doc.get("energy_breakdown")
    breakdown = (
        None
        if breakdown_doc is None
        else EnergyBreakdown(
            e_dec=breakdown_doc["e_dec"],
            e_cell=breakdown_doc["e_cell"],
            e_io=breakdown_doc["e_io"],
            e_main=breakdown_doc["e_main"],
            hit_rate=breakdown_doc["hit_rate"],
            miss_rate=breakdown_doc["miss_rate"],
            events=breakdown_doc["events"],
        )
    )
    size, line_size, ways, tiling = doc["config"]
    return PerformanceEstimate(
        config=CacheConfig(size, line_size, ways, tiling),
        miss_rate=doc["miss_rate"],
        cycles=doc["cycles"],
        energy_nj=doc["energy_nj"],
        events=doc["events"],
        accesses=doc["accesses"],
        reads=doc["reads"],
        read_miss_rate=doc["read_miss_rate"],
        add_bs=doc["add_bs"],
        conflict_free_layout=doc["conflict_free_layout"],
        energy_breakdown=breakdown,
    )


def _evaluator_identity(evaluator: Any) -> str:
    """A stable textual identity of what is being evaluated.

    Duck-typed over the two evaluator shapes the executor accepts: an
    :class:`~repro.engine.evaluator.Evaluator` (workload + backend) or a
    :class:`~repro.core.composite.CompositeProgram` (kernels + trips).
    Reprs of the underlying frozen dataclasses are deterministic across
    processes, unlike ``hash()``.
    """
    workload = getattr(evaluator, "workload", None)
    backend = getattr(evaluator, "backend", None)
    backend_name = getattr(backend, "name", backend)
    backend_params = getattr(backend, "params", None)
    if workload is not None:
        return repr(
            (
                "workload",
                repr(workload.key),
                backend_name,
                backend_params,
                getattr(evaluator, "gray_code", None),
            )
        )
    kernels = getattr(evaluator, "kernels", None)
    trips = getattr(evaluator, "trips", None)
    if kernels is not None:
        return repr(
            (
                "composite",
                [repr(kernel) for kernel in kernels],
                sorted((trips or {}).items()),
                backend_name,
            )
        )
    return repr(("opaque", type(evaluator).__qualname__))


def sweep_fingerprint(
    evaluator: Any, configs: Sequence[CacheConfig]
) -> str:
    """SHA-256 identity of one sweep: evaluator + ordered config list.

    Two sweeps share a fingerprint exactly when their journals are
    interchangeable; :meth:`SweepCheckpoint.load` refuses anything else.
    """
    digest = hashlib.sha256()
    digest.update(_evaluator_identity(evaluator).encode())
    for config in configs:
        digest.update(
            f"|{config.size},{config.line_size},{config.ways},"
            f"{config.tiling}".encode()
        )
    return digest.hexdigest()


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep chunks.

    Lifecycle: :meth:`load` (on resume) returns everything already
    evaluated, then :meth:`open_for_append` positions the journal for
    writing (truncating it on a fresh run), and :meth:`record_chunk`
    appends one flushed, fsynced line per completed chunk.  Records are
    whole chunks, so a kill between writes loses at most the in-flight
    chunks -- never corrupts committed ones -- and a torn trailing line is
    skipped on load with a warning.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[Any] = None

    def load(
        self, fingerprint: str
    ) -> Dict[int, PerformanceEstimate]:
        """Completed ``index -> estimate`` pairs journaled for this sweep.

        A missing file is an empty resume (first run).  A journal whose
        header names a different fingerprint raises
        :class:`CheckpointMismatchError`; a file that is not a checkpoint
        at all raises :class:`CheckpointError`.
        """
        if not os.path.exists(self.path):
            return {}
        done: Dict[int, PerformanceEstimate] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path} is not a {CHECKPOINT_SCHEMA} journal"
            ) from exc
        _check_journal_schema(header, self.path)
        if header.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written by a different sweep "
                "(workload, backend or configuration list changed); "
                "delete it or drop --resume to start over"
            )
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                pairs = record["chunk"]
                parsed = [
                    (int(index), estimate_from_json(doc))
                    for index, doc in pairs
                ]
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # The signature of a kill mid-write: everything after the
                # tear is unusable, so stop (the sweep re-evaluates it).
                logger.warning(
                    "checkpoint %s: ignoring torn record at line %d "
                    "(and everything after it)",
                    self.path,
                    number,
                )
                break
            for index, estimate in parsed:
                done[index] = estimate
        return done

    def open_for_append(self, fingerprint: str, fresh: bool, configs: int) -> None:
        """Start journaling: truncate + header when ``fresh``, else append.

        On a resumed run with no existing file the header is written too,
        so ``--resume`` is safe to pass on the very first attempt.
        """
        mode = "w" if fresh or not os.path.exists(self.path) else "a"
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._write_line(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "fingerprint": fingerprint,
                    "configs": configs,
                }
            )

    def record_chunk(
        self, pairs: Sequence[Tuple[int, PerformanceEstimate]]
    ) -> None:
        """Append one completed chunk (durable before returning)."""
        if self._handle is None:
            raise CheckpointError("checkpoint is not open for appending")
        self._write_line(
            {
                "chunk": [
                    [index, estimate_to_json(estimate)]
                    for index, estimate in pairs
                ]
            }
        )

    def _write_line(self, record: Dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def load_checkpoint_estimates(path: str) -> List[PerformanceEstimate]:
    """All estimates journaled at ``path``, in sweep order (no fingerprint
    check -- inspection/tooling use; sweeps go through :meth:`SweepCheckpoint.load`).
    """
    checkpoint = SweepCheckpoint(path)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path} is not a {CHECKPOINT_SCHEMA} journal"
        ) from exc
    _check_journal_schema(header, path)
    fingerprint = header.get("fingerprint")
    if not isinstance(fingerprint, str):
        raise CheckpointError(
            f"{path} has no sweep fingerprint in its header"
        )
    done = checkpoint.load(fingerprint)
    return [done[index] for index in sorted(done)]
