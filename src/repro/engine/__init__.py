"""repro.engine: the pluggable, parallel evaluation engine.

The paper's MemExplore loop is one pipeline -- trace generation, miss
measurement, cycle/energy models -- and this package is its single
implementation, consumed by every exploration layer:

* :mod:`repro.engine.workload` -- the :class:`Workload` protocol unifying
  loop-nest kernels, instruction streams and raw traces;
* :mod:`repro.engine.backends` -- pluggable miss-measurement backends
  (``fastsim``, ``reference``, ``sampled``, ``analytic``);
* :mod:`repro.engine.cache` -- the process-wide, size-bounded
  :class:`EvalCache` memoising traces and miss vectors;
* :mod:`repro.engine.evaluator` -- the :class:`Evaluator` pipeline;
* :mod:`repro.engine.parallel` -- :class:`ParallelSweep`, chunked
  multi-process fan-out with deterministic, bit-identical results.

Quickstart::

    from repro.engine import Evaluator, KernelWorkload
    from repro.kernels import get_kernel

    evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
    result = evaluator.sweep(max_size=512, jobs=4)
    print(result.min_energy())
"""

from repro.engine.backends import (
    AnalyticBackend,
    Backend,
    FastSimBackend,
    MissMeasurement,
    ReferenceBackend,
    SampledBackend,
    available_backends,
    cached_miss_vector,
    get_backend,
)
from repro.engine.cache import (
    CacheStats,
    EvalCache,
    configure_eval_cache,
    get_eval_cache,
)
from repro.engine.evaluator import Evaluator, assemble_estimate, order_configs
from repro.engine.parallel import ParallelSweep
from repro.engine.result import ExplorationResult
from repro.engine.workload import (
    InstructionWorkload,
    KernelWorkload,
    TraceBundle,
    TraceWorkload,
    Workload,
    trace_fingerprint,
)

__all__ = [
    "AnalyticBackend",
    "Backend",
    "CacheStats",
    "EvalCache",
    "Evaluator",
    "ExplorationResult",
    "FastSimBackend",
    "InstructionWorkload",
    "KernelWorkload",
    "MissMeasurement",
    "ParallelSweep",
    "ReferenceBackend",
    "SampledBackend",
    "TraceBundle",
    "TraceWorkload",
    "Workload",
    "assemble_estimate",
    "available_backends",
    "cached_miss_vector",
    "configure_eval_cache",
    "get_backend",
    "get_eval_cache",
    "order_configs",
    "trace_fingerprint",
]
