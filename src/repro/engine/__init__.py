"""repro.engine: the pluggable, parallel evaluation engine.

The paper's MemExplore loop is one pipeline -- trace generation, miss
measurement, cycle/energy models -- and this package is its single
implementation, consumed by every exploration layer:

* :mod:`repro.engine.workload` -- the :class:`Workload` protocol unifying
  loop-nest kernels, instruction streams and raw traces;
* :mod:`repro.engine.backends` -- pluggable miss-measurement backends
  (``fastsim``, ``reference``, ``sampled``, ``analytic``);
* :mod:`repro.engine.cache` -- the process-wide, size-bounded
  :class:`EvalCache` memoising traces and miss vectors;
* :mod:`repro.engine.evaluator` -- the :class:`Evaluator` pipeline;
* :mod:`repro.engine.parallel` -- :class:`ParallelSweep`, chunked
  multi-process fan-out with deterministic, bit-identical results;
* :mod:`repro.engine.resilience` -- fault tolerance for sweeps: per-chunk
  retries with backoff, watchdog timeouts, and the append-only
  :class:`SweepCheckpoint` journal behind ``--checkpoint``/``--resume``;
* :mod:`repro.engine.faults` -- the deterministic fault-injection harness
  (:class:`FaultInjector`) the test suite and nightly CI chaos job wrap
  around chunk dispatch.

Quickstart::

    from repro.engine import Evaluator, KernelWorkload
    from repro.kernels import get_kernel

    evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
    result = evaluator.sweep(max_size=512, jobs=4)
    print(result.min_energy())
"""

from repro.engine.backends import (
    AnalyticBackend,
    Backend,
    FastSimBackend,
    MissMeasurement,
    OnePassBackend,
    ReferenceBackend,
    SampledBackend,
    available_backends,
    cached_miss_vector,
    get_backend,
)
from repro.engine.cache import (
    CacheStats,
    EvalCache,
    configure_eval_cache,
    get_eval_cache,
)
from repro.engine.evaluator import Evaluator, assemble_estimate, order_configs
from repro.engine.faults import FaultInjector, InjectedCrash
from repro.engine.parallel import ParallelSweep
from repro.engine.resilience import (
    CheckpointError,
    CheckpointMismatchError,
    CorruptPayloadError,
    ResilienceOptions,
    RetryPolicy,
    SweepCheckpoint,
    SweepChunkError,
    TransientChunkError,
    load_checkpoint_estimates,
    sweep_fingerprint,
)
from repro.engine.result import ExplorationResult
from repro.engine.workload import (
    InstructionWorkload,
    KernelWorkload,
    TraceBundle,
    TraceWorkload,
    Workload,
    trace_fingerprint,
)

__all__ = [
    "AnalyticBackend",
    "Backend",
    "CacheStats",
    "CheckpointError",
    "CheckpointMismatchError",
    "CorruptPayloadError",
    "EvalCache",
    "Evaluator",
    "ExplorationResult",
    "FastSimBackend",
    "FaultInjector",
    "InjectedCrash",
    "InstructionWorkload",
    "KernelWorkload",
    "MissMeasurement",
    "OnePassBackend",
    "ParallelSweep",
    "ReferenceBackend",
    "ResilienceOptions",
    "RetryPolicy",
    "SampledBackend",
    "SweepCheckpoint",
    "SweepChunkError",
    "TraceBundle",
    "TraceWorkload",
    "TransientChunkError",
    "Workload",
    "assemble_estimate",
    "available_backends",
    "cached_miss_vector",
    "configure_eval_cache",
    "get_backend",
    "get_eval_cache",
    "load_checkpoint_estimates",
    "order_configs",
    "sweep_fingerprint",
    "trace_fingerprint",
]
