"""Workloads: everything the engine can generate an address trace for.

The four exploration layers of the repo differ only in where their traces
come from: loop-nest kernels regenerate per ``(T, L, B)`` (layout and
tiling depend on the geometry), instruction streams and raw Dinero traces
are fixed, and composite programs aggregate kernels.  The
:class:`Workload` protocol reduces all of them to two methods:

* ``trace_key(config)`` -- the hashable identity of the trace a
  configuration needs (the :class:`~repro.engine.cache.EvalCache` key);
* ``trace_for(config)`` -- the actual :class:`TraceBundle`.

Keys are structural: two equal kernels produce equal keys, so separate
explorer instances over the same kernel share cached work.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Hashable, NamedTuple, Optional, Tuple

from repro.cache.trace import MemoryTrace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.config import CacheConfig
    from repro.icache.blocks import ControlFlowTrace
    from repro.kernels.base import Kernel

__all__ = [
    "InstructionWorkload",
    "KernelWorkload",
    "TraceBundle",
    "TraceWorkload",
    "Workload",
    "trace_fingerprint",
]


class TraceBundle(NamedTuple):
    """A concrete trace plus the metadata the metric assembly needs.

    ``events`` is the paper's trip count (``None`` means one event per
    access); ``conflict_free`` records whether the layout that produced the
    trace was certified conflict-free (Section 4.1).
    """

    trace: MemoryTrace
    conflict_free: bool = False
    events: Optional[int] = None


def trace_fingerprint(trace: MemoryTrace) -> str:
    """Stable content hash of a trace (addresses + write flags).

    Used to key raw traces that carry no structural identity of their own,
    e.g. Dinero imports.  Stable across processes, unlike ``hash()``.
    """
    digest = hashlib.sha1()
    digest.update(trace.addresses.tobytes())
    digest.update(trace.is_write.tobytes())
    return digest.hexdigest()


class Workload:
    """Protocol: a source of address traces for the evaluation engine.

    Subclasses must implement :meth:`trace_key` and :meth:`trace_for`;
    :meth:`validate` may reject configurations that make no sense for the
    workload (e.g. tiling an instruction stream).
    """

    #: Stable identity of the workload itself (prefix of every trace key).
    key: Hashable = None

    def validate(self, config: "CacheConfig") -> None:
        """Raise ``ValueError`` if ``config`` does not apply to this workload."""

    def trace_key(self, config: "CacheConfig") -> Hashable:
        """Hashable identity of the trace ``config`` evaluates against."""
        raise NotImplementedError

    def trace_for(self, config: "CacheConfig") -> TraceBundle:
        """Generate the trace ``config`` evaluates against."""
        raise NotImplementedError


class KernelWorkload(Workload):
    """A loop-nest kernel; traces depend on ``(T, L, B)`` only.

    The Section 4.1 layout is recomputed per geometry when
    ``optimize_layout`` is set, exactly as :class:`~repro.core.explorer.MemExplorer`
    always did; the kernel's frozen-dataclass equality is the cache
    identity, so equal kernels share traces across explorer instances.
    """

    def __init__(self, kernel: "Kernel", optimize_layout: bool = True) -> None:
        self.kernel = kernel
        self.optimize_layout = optimize_layout
        self.key = ("kernel", kernel, optimize_layout)

    def trace_key(self, config: "CacheConfig") -> Hashable:
        # The layout depends on (T, L); the access order additionally on B.
        return (self.key, config.size, config.line_size, config.tiling)

    def trace_for(self, config: "CacheConfig") -> TraceBundle:
        if self.optimize_layout:
            assignment = self.kernel.optimized_layout(
                config.size, config.line_size
            )
            layout = assignment.layout
            conflict_free = assignment.conflict_free
        else:
            layout = self.kernel.default_layout()
            conflict_free = False
        trace = self.kernel.trace(layout=layout, tile=config.tiling)
        return TraceBundle(
            trace=trace,
            conflict_free=conflict_free,
            events=self.kernel.nest.iterations,
        )


class InstructionWorkload(Workload):
    """An instruction-fetch stream; one fixed trace for every geometry."""

    def __init__(self, execution: "ControlFlowTrace") -> None:
        self.execution = execution
        self._trace: Optional[MemoryTrace] = None
        self._key: Optional[Tuple] = None

    @property
    def trace(self) -> MemoryTrace:
        """The expanded fetch trace (computed once, held for identity)."""
        if self._trace is None:
            self._trace = self.execution.fetch_trace()
        return self._trace

    @property
    def key(self) -> Hashable:  # type: ignore[override]
        if self._key is None:
            self._key = ("itrace", trace_fingerprint(self.trace))
        return self._key

    def validate(self, config: "CacheConfig") -> None:
        if config.tiling != 1:
            raise ValueError("tiling does not apply to instruction caches")

    def trace_key(self, config: "CacheConfig") -> Hashable:
        return self.key

    def trace_for(self, config: "CacheConfig") -> TraceBundle:
        return TraceBundle(trace=self.trace, conflict_free=False, events=None)


class TraceWorkload(Workload):
    """A raw, pre-generated trace (e.g. a Dinero ``din`` import)."""

    def __init__(
        self,
        trace: MemoryTrace,
        events: Optional[int] = None,
        conflict_free: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.trace = trace
        self.events = events
        self.conflict_free = conflict_free
        self.name = name
        # Content-addressed identity: equal traces share cached work even
        # when loaded twice from disk.
        self.key = ("trace", name, trace_fingerprint(trace), events)

    def trace_key(self, config: "CacheConfig") -> Hashable:
        return self.key

    def trace_for(self, config: "CacheConfig") -> TraceBundle:
        return TraceBundle(
            trace=self.trace,
            conflict_free=self.conflict_free,
            events=self.events,
        )
