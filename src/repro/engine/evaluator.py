"""The unified evaluation pipeline: trace -> misses -> cycles -> energy.

One :class:`Evaluator` binds a :class:`~repro.engine.workload.Workload` to
a :class:`~repro.engine.backends.Backend` and an energy model, and turns
:class:`~repro.core.config.CacheConfig` points into
:class:`~repro.core.metrics.PerformanceEstimate` records.  All four
exploration layers (:class:`~repro.core.explorer.MemExplorer`,
:class:`~repro.icache.explorer.ICacheExplorer`, the scratchpad comparison
and :class:`~repro.core.composite.CompositeProgram`) are thin consumers of
this class.

Traces and miss measurements are memoised in the process-wide
:class:`~repro.engine.cache.EvalCache`, keyed on ``(workload, T, L, B)``
and ``(trace, L, sets, ways, backend)`` respectively, so the associativity
sweep and repeated sweeps across explorers never recompute shared work.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Iterable, List, Optional, Union

from repro.core.config import CacheConfig, design_space
from repro.core.cycles import processor_cycles
from repro.core.metrics import PerformanceEstimate
from repro.energy.bus import address_bus_switching
from repro.energy.model import EnergyModel
from repro.engine.backends import (
    Backend,
    MissMeasurement,
    _measurement_from_vector,
    get_backend,
)
from repro.engine.cache import EvalCache, get_eval_cache
from repro.engine.resilience import ResilienceOptions
from repro.engine.result import ExplorationResult
from repro.engine.workload import TraceBundle, Workload
from repro.obs.metrics import get_metrics
from repro.obs.spans import span

__all__ = ["Evaluator", "assemble_estimate", "order_configs"]

logger = logging.getLogger(__name__)


def order_configs(configs: Iterable[CacheConfig]) -> List[CacheConfig]:
    """Canonical sweep order: group by trace key ``(T, L, B)``, then ways.

    All engine sweeps use this order so that the associativity sweep reuses
    each generated trace and serial/parallel runs agree on result order.
    """
    return sorted(configs, key=lambda c: (c.size, c.line_size, c.tiling, c.ways))


def assemble_estimate(
    bundle: TraceBundle,
    config: CacheConfig,
    measurement: MissMeasurement,
    energy_model: EnergyModel,
    add_bs: float,
) -> PerformanceEstimate:
    """Section 2.2 cycle model + Section 2.3 energy model on a measurement."""
    events = bundle.events if bundle.events is not None else measurement.accesses
    with span("cycles"):
        cycles = processor_cycles(
            measurement.miss_rate,
            events,
            ways=config.ways,
            line_size=config.line_size,
            tiling=config.tiling,
        )
    with span("energy"):
        breakdown = energy_model.breakdown(
            config.size,
            config.line_size,
            config.ways,
            hit_rate=1.0 - measurement.read_miss_rate,
            miss_rate=measurement.read_miss_rate,
            events=events,
            add_bs=add_bs,
        )
    return PerformanceEstimate(
        config=config,
        miss_rate=measurement.miss_rate,
        cycles=cycles,
        energy_nj=breakdown.total,
        events=events,
        accesses=measurement.accesses,
        reads=measurement.reads,
        read_miss_rate=measurement.read_miss_rate,
        add_bs=add_bs,
        conflict_free_layout=bundle.conflict_free,
        energy_breakdown=breakdown,
    )


class Evaluator:
    """Evaluate one workload through one backend, with shared memoisation.

    Parameters
    ----------
    workload:
        Any :class:`~repro.engine.workload.Workload`.
    backend:
        Backend instance or name (``fastsim``, ``reference``, ``sampled``,
        ``analytic``).
    energy_model:
        Section 2.3 model; defaults to the paper's constants.
    gray_code:
        Gray-code the address bus when measuring ``Add_bs``.
    cache:
        Override the process-wide :class:`EvalCache` (tests only).
    """

    def __init__(
        self,
        workload: Workload,
        backend: Union[str, Backend, None] = None,
        energy_model: Optional[EnergyModel] = None,
        gray_code: bool = True,
        cache: Optional[EvalCache] = None,
    ) -> None:
        self.workload = workload
        self.backend = get_backend(backend)
        self.energy_model = (
            energy_model if energy_model is not None else EnergyModel()
        )
        self.gray_code = gray_code
        self._cache = cache
        self._analytic = None

    # The cache is process-local state: when an evaluator crosses a process
    # boundary (ParallelSweep), the worker re-binds to its own global cache.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = None
        state["_analytic"] = None
        return state

    @property
    def cache(self) -> EvalCache:
        """The memoisation store in use (process-wide unless overridden)."""
        return self._cache if self._cache is not None else get_eval_cache()

    def _bundle_for(self, config: CacheConfig) -> TraceBundle:
        key = ("trace", self.workload.trace_key(config))
        with span("trace_gen", config=config.label(full=True)):
            return self.cache.trace(key, lambda: self.workload.trace_for(config))

    def _measure_key(self, trace_key, config: CacheConfig):
        """Cache key of a (non-vector) measurement for ``config``.

        Shared by the single and the batch path, so a warm single
        evaluation hits whatever a grouped one-pass sweep filled in.
        """
        return (
            "measure",
            trace_key,
            config.line_size,
            config.num_sets,
            config.ways,
            self.backend.name,
            self.backend.params,
        )

    def _measure(
        self, bundle: TraceBundle, config: CacheConfig
    ) -> MissMeasurement:
        trace_key = self.workload.trace_key(config)
        with span(
            "miss_measure",
            backend=self.backend.name,
            config=config.label(full=True),
        ):
            if self.backend.provides_vector:
                key = (
                    "vec",
                    trace_key,
                    config.line_size,
                    config.num_sets,
                    config.ways,
                    self.backend.name,
                )
                vector = self.cache.miss(
                    key, lambda: self.backend.miss_vector(bundle.trace, config)
                )
                return _measurement_from_vector(bundle.trace, vector)
            return self.cache.miss(
                self._measure_key(trace_key, config),
                lambda: self.backend.measure(bundle.trace, config),
            )

    def _add_bs(self, bundle: TraceBundle, config: CacheConfig) -> float:
        key = ("addbs", self.workload.trace_key(config), self.gray_code)
        with span("add_bs"):
            return self.cache.miss(
                key,
                lambda: address_bus_switching(
                    bundle.trace.addresses, gray=self.gray_code
                ),
            )

    def _analytic_explorer(self):
        if self._analytic is None:
            from repro.core.analytic import AnalyticExplorer

            kernel = getattr(self.workload, "kernel", None)
            if kernel is None:
                raise ValueError(
                    "the analytic backend needs a loop-nest kernel workload"
                )
            self._analytic = AnalyticExplorer(
                kernel, energy_model=self.energy_model
            )
        return self._analytic

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """One configuration -> one :class:`PerformanceEstimate`."""
        metrics = get_metrics()
        metrics.counter("engine.configs_evaluated").inc()
        started = time.perf_counter()
        try:
            with span("evaluate", config=config.label(full=True)):
                self.workload.validate(config)
                if self.backend.requires_kernel:
                    return self._analytic_explorer().evaluate(config)
                bundle = self._bundle_for(config)
                measurement = self._measure(bundle, config)
                add_bs = self._add_bs(bundle, config)
                return assemble_estimate(
                    bundle, config, measurement, self.energy_model, add_bs
                )
        finally:
            # Per-eval latency, overall and per backend.  Looked up by
            # name each call: histograms hold a Lock, so a picklable
            # evaluator must not cache instrument references.
            elapsed = time.perf_counter() - started
            metrics.histogram("engine.eval").observe(elapsed)
            metrics.histogram(
                "engine.eval." + self.backend.name
            ).observe(elapsed)

    def evaluate_batch(
        self, configs: Iterable[CacheConfig]
    ) -> List[PerformanceEstimate]:
        """Many configurations at once, grouped for grid-capable backends.

        Configurations are grouped by ``(trace key, line size)`` and each
        group's *cold* measurements are obtained from one
        :meth:`~repro.engine.backends.Backend.measure_grid` pass; warm
        ones come from the :class:`EvalCache` exactly as in
        :meth:`evaluate`, through the same keys, so single and grouped
        evaluation fill and hit one another's entries.  Estimates are
        returned in input order and are byte-identical to per-config
        :meth:`evaluate` calls (asserted by the test suite).  Backends
        without ``provides_grid`` (and the kernel-bound analytic backend)
        simply fall back to per-config evaluation.
        """
        configs = list(configs)
        if not self.backend.provides_grid or self.backend.requires_kernel:
            return [self.evaluate(config) for config in configs]
        metrics = get_metrics()
        groups: "dict[tuple, List[tuple[int, CacheConfig]]]" = {}
        group_order: List[tuple] = []
        for position, config in enumerate(configs):
            self.workload.validate(config)
            group_key = (self.workload.trace_key(config), config.line_size)
            if group_key not in groups:
                groups[group_key] = []
                group_order.append(group_key)
            groups[group_key].append((position, config))
        results: List[Optional[PerformanceEstimate]] = [None] * len(configs)
        for group_key in group_order:
            trace_key, line_size = group_key
            members = groups[group_key]
            started = time.perf_counter()
            with span(
                "evaluate_batch",
                backend=self.backend.name,
                configs=len(members),
                line_size=line_size,
            ):
                bundle = self._bundle_for(members[0][1])
                by_key: "dict[tuple, CacheConfig]" = {}
                for _, config in members:
                    by_key.setdefault(self._measure_key(trace_key, config), config)

                def _measure_missing(missing, _bundle=bundle, _by_key=by_key):
                    cold = [_by_key[key] for key in missing]
                    measured = self.backend.measure_grid(_bundle.trace, cold)
                    return {
                        self._measure_key(trace_key, config): measurement
                        for config, measurement in measured.items()
                    }

                with span(
                    "miss_measure",
                    backend=self.backend.name,
                    configs=len(by_key),
                ):
                    measurements = self.cache.miss_many(
                        list(by_key), _measure_missing
                    )
                add_bs = self._add_bs(bundle, members[0][1])
                for position, config in members:
                    results[position] = assemble_estimate(
                        bundle,
                        config,
                        measurements[self._measure_key(trace_key, config)],
                        self.energy_model,
                        add_bs,
                    )
            elapsed = time.perf_counter() - started
            metrics.counter("engine.configs_evaluated").inc(len(members))
            # The per-eval histograms see the amortised group latency so
            # their totals still sum to wall-clock evaluation time.
            amortised = elapsed / len(members)
            overall = metrics.histogram("engine.eval")
            per_backend = metrics.histogram("engine.eval." + self.backend.name)
            for _ in members:
                overall.observe(amortised)
                per_backend.observe(amortised)
        return list(results)

    def sweep(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        jobs: int = 1,
        progress: Optional[Callable[[PerformanceEstimate], None]] = None,
        resilience: Optional[ResilienceOptions] = None,
        **space_kwargs,
    ) -> ExplorationResult:
        """Evaluate a configuration set (default: the MemExplore space).

        ``jobs > 1`` fans the sweep out across processes through
        :class:`~repro.engine.parallel.ParallelSweep`; results are returned
        in the same deterministic order (and are bit-identical to the
        serial path, which the tests assert).

        ``resilience`` opts into fault tolerance -- per-chunk retries and
        timeouts, checkpoint journaling and resume-from-checkpoint (see
        :class:`~repro.engine.resilience.ResilienceOptions`).  It applies
        to serial sweeps too: ``jobs=1`` with a checkpoint journals and
        resumes chunk by chunk through the same executor.
        """
        if configs is None:
            configs = design_space(max_size=max_size, **space_kwargs)
        ordered = order_configs(configs)
        logger.info(
            "sweep start: %d configs, backend=%s, jobs=%s",
            len(ordered),
            self.backend.name,
            jobs,
        )
        started = time.perf_counter()
        with span(
            "sweep", backend=self.backend.name, configs=len(ordered), jobs=jobs
        ):
            if (jobs and jobs > 1) or resilience is not None:
                from repro.engine.parallel import ParallelSweep

                estimates = ParallelSweep(
                    jobs=jobs or 1, resilience=resilience
                ).run(self, ordered)
                if progress is not None:
                    for estimate in estimates:
                        progress(estimate)
            elif self.backend.provides_grid and not self.backend.requires_kernel:
                estimates = self.evaluate_batch(ordered)
                if progress is not None:
                    for estimate in estimates:
                        progress(estimate)
            else:
                estimates = []
                for config in ordered:
                    estimate = self.evaluate(config)
                    estimates.append(estimate)
                    if progress is not None:
                        progress(estimate)
        elapsed = time.perf_counter() - started
        metrics = get_metrics()
        metrics.counter("engine.sweeps").inc()
        metrics.histogram("engine.sweep_seconds").observe(elapsed)
        metrics.gauge("engine.last_sweep_configs").set(len(ordered))
        logger.info(
            "sweep done: %d configs in %.3fs (backend=%s)",
            len(ordered),
            elapsed,
            self.backend.name,
        )
        return ExplorationResult(estimates)
