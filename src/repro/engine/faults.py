"""Deterministic fault injection for the sweep executor.

The resilience layer is only trustworthy if its failure paths are
exercised, and real infrastructure faults are neither portable nor
reproducible.  :class:`FaultInjector` simulates them *deterministically*:
every decision is a pure function of ``(seed, fault kind, chunk token,
attempt)`` via SHA-256, so a given seed always injects the same faults at
the same points -- across processes, machines and reruns -- while a
retried attempt gets a fresh draw (which is exactly how transient faults
behave).

Four fault kinds, matched to the executor's failure classification:

``crash_rate``
    Raise :class:`InjectedCrash` (a
    :class:`~repro.engine.resilience.TransientChunkError`) in the worker
    before evaluating -- a clean in-process failure.
``kill_rate``
    ``os._exit(1)`` the worker -- a hard process death.  Under
    :class:`~repro.engine.parallel.ParallelSweep` this breaks the whole
    pool (``BrokenProcessPool``), the coarsest real-world failure.
``hang_rate``
    Sleep ``hang_seconds`` before evaluating -- trips the executor's
    per-chunk timeout and its abandon-and-redispatch path.
``corrupt_rate``
    Replace the worker's result payload with garbage -- exercises payload
    validation (:class:`~repro.engine.resilience.CorruptPayloadError`).

The injector hooks the *dispatch* boundary, not the evaluators, so the
executor's graceful-degradation path (in-parent serial evaluation of a
chunk that exhausted its retries) runs clean -- mirroring how a sweep
escapes genuinely unreliable infrastructure.

Used by ``tests/test_resilience.py``, ``tests/test_chaos.py`` and the
nightly CI chaos job (three seeds, resumed-equals-clean assertion).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Hashable

from repro.engine.resilience import TransientChunkError

__all__ = ["CORRUPT_PAYLOAD", "FaultInjector", "InjectedCrash"]

#: The sentinel a corrupted worker ships instead of a real payload.
CORRUPT_PAYLOAD = ("repro.faults/corrupt-payload",)


class InjectedCrash(TransientChunkError):
    """A simulated in-worker crash (transient by definition)."""


@dataclass(frozen=True)
class FaultInjector:
    """Seeded crash/kill/hang/corrupt injection around chunk evaluation.

    Rates are independent per-fault probabilities in ``[0, 1]``; each is
    drawn once per ``(chunk, attempt)``.  The injector is a frozen
    dataclass so it pickles into workers unchanged.
    """

    seed: int = 0
    crash_rate: float = 0.0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "kill_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    def _draw(self, kind: str, token: Hashable, attempt: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one decision."""
        digest = hashlib.sha256(
            repr((self.seed, kind, token, attempt)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def on_chunk_start(self, token: Hashable, attempt: int) -> None:
        """Called in the worker before a chunk evaluates; may not return.

        Order matters: a kill pre-empts a crash pre-empts a hang, so one
        chunk suffers at most one fault per attempt.
        """
        if self._draw("kill", token, attempt) < self.kill_rate:
            os._exit(1)
        if self._draw("crash", token, attempt) < self.crash_rate:
            raise InjectedCrash(
                f"injected crash (seed={self.seed}, chunk={token}, "
                f"attempt={attempt})"
            )
        if self._draw("hang", token, attempt) < self.hang_rate:
            time.sleep(self.hang_seconds)

    def mangle_payload(
        self, token: Hashable, attempt: int, payload: Any
    ) -> Any:
        """Possibly replace a completed chunk's payload with garbage."""
        if self._draw("corrupt", token, attempt) < self.corrupt_rate:
            return CORRUPT_PAYLOAD
        return payload
