"""Parallel sweep executor: fan the design space out across cores.

The paper's sweep is embarrassingly parallel -- every configuration is an
independent evaluation -- but naive fan-out wastes the engine's trace
memoisation: a trace is shared by the whole associativity sub-sweep, so
scattering those configurations across workers regenerates it per worker.
:class:`ParallelSweep` therefore chunks the (canonically ordered) sweep
along trace-key boundaries, ships whole trace groups to workers, and
restores the deterministic order on collection.  Results are bit-identical
to the serial path (asserted by the test suite).

Failure handling is per-chunk, not per-sweep (see
:mod:`repro.engine.resilience`):

* a chunk that fails transiently -- worker crash, broken pool, corrupt
  payload, timeout -- is re-dispatched with exponential backoff up to
  :attr:`~repro.engine.resilience.RetryPolicy.max_retries` times, then
  degrades to clean in-parent serial evaluation of *that chunk only*;
* a chunk whose evaluator raises any other exception fails the sweep
  immediately with a :class:`~repro.engine.resilience.SweepChunkError`
  naming the failing configurations (deterministic bugs do not deserve
  retries);
* environments that cannot fork or pickle at all (restricted sandboxes)
  still fall back to serial execution of whatever is unfinished, logged
  at warning level so the degradation is never silent;
* with a :class:`~repro.engine.resilience.SweepCheckpoint` journal,
  every completed chunk is durably recorded, and ``resume`` restarts a
  killed sweep exactly where it stopped -- the resumed result table is
  bit-identical to an uninterrupted run.

Per-chunk timeouts are watchdog-style: whenever ``chunk_timeout_s``
elapses without *any* chunk completing, the in-flight chunks are declared
wedged, the pool is abandoned (hung workers are never joined), and only
those chunks are re-dispatched to a fresh pool.

Observability crosses the process boundary with the results: each worker
evaluates its chunk under a fresh :class:`~repro.obs.spans.SpanCollector`
(when the parent is profiling) and computes its metric and
:class:`~repro.engine.cache.EvalCache` counter deltas against a
chunk-start baseline, so that fork-inherited parent counts are never
double-reported.  The parent merges each chunk's payload exactly once, as
it completes -- retried chunks merge only their successful attempt -- so
the metrics registry and ``EvalCache`` stats stay truthful under
``jobs=N`` even across failures and resumes.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import logging
import os
import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.engine.cache import get_eval_cache
from repro.engine.resilience import (
    CircuitOpenError,
    CorruptPayloadError,
    ResilienceOptions,
    SweepCancelledError,
    SweepCheckpoint,
    SweepChunkError,
    TransientChunkError,
    sweep_fingerprint,
)
from repro.obs import trace as _trace
from repro.obs.metrics import get_metrics
from repro.obs.spans import (
    SpanCollector,
    activate,
    current_path,
    get_collector,
    profiling_enabled,
    reset_stack,
    restore,
    restore_stack,
    span,
)

__all__ = ["ParallelSweep"]

logger = logging.getLogger(__name__)

#: What one worker ships back: tagged estimates, the chunk's span
#: snapshot (empty unless profiling), the metric / cache deltas, and the
#: chunk's trace events (empty unless the parent exported a trace
#: context -- see :mod:`repro.obs.trace`).
_ChunkPayload = Tuple[
    List[Tuple[int, PerformanceEstimate]],
    List[Dict[str, Any]],
    Dict[str, Any],
    Dict[str, Dict[str, int]],
    List[Dict[str, Any]],
]

#: One chunk of work: ``(index, config)`` pairs in sweep order.
_Chunk = List[Tuple[int, CacheConfig]]

#: Failures that mark a chunk transient (worth re-dispatching).
_TRANSIENT_ERRORS = (
    TransientChunkError,
    concurrent.futures.process.BrokenProcessPool,
)

#: Failures that mean this *environment* cannot run a pool at all.
_ENVIRONMENT_ERRORS = (OSError, PermissionError, pickle.PicklingError)


def _diff_cache_counters(
    current: Dict[str, Dict[str, int]], base: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    return {
        store: {
            field: current[store][field] - base[store].get(field, 0)
            for field in ("hits", "misses", "evictions")
        }
        for store in current
    }


def _evaluate_pairs(
    evaluator: Any, indexed: Sequence[Tuple[int, CacheConfig]]
) -> List[Tuple[int, PerformanceEstimate]]:
    """Evaluate an indexed chunk, batched when the backend allows it.

    Grid-capable backends (``provides_grid``) get the whole chunk at once
    through ``evaluate_batch`` -- one stack-filter pass per (trace, line
    size) group instead of one simulation per configuration.  Everything
    else (vector backends, the kernel-bound analytic backend, evaluators
    without a batch method such as :class:`CompositeProgram`) keeps the
    historical per-config loop.  Results are bit-identical either way.
    """
    backend = getattr(evaluator, "backend", None)
    batch = getattr(evaluator, "evaluate_batch", None)
    if (
        batch is not None
        and backend is not None
        and getattr(backend, "provides_grid", False)
        and not getattr(backend, "requires_kernel", False)
    ):
        estimates = batch([config for _, config in indexed])
        return [
            (index, estimate)
            for (index, _), estimate in zip(indexed, estimates)
        ]
    return [(index, evaluator.evaluate(config)) for index, config in indexed]


def _evaluate_chunk(
    evaluator: Any,
    indexed: Sequence[Tuple[int, CacheConfig]],
    profile: bool = False,
    injector: Optional[Any] = None,
    attempt: int = 0,
    trace_ctx: Optional[Dict[str, Any]] = None,
) -> _ChunkPayload:
    """Worker entry point: evaluate one chunk, tagging results by index.

    Counter deltas are taken against a chunk-start baseline because a
    forked worker inherits the parent's (and, on a reused pool worker, the
    previous chunks') counts.  ``injector`` is the deterministic fault
    harness (:class:`~repro.engine.faults.FaultInjector`); it runs at this
    dispatch boundary only, so the parent's degradation paths stay clean.

    ``trace_ctx`` (from :func:`repro.obs.trace.export_context`) activates
    a fresh worker-side recorder whose events -- the chunk wrapper span
    plus every stage span under it -- ship back in the payload for the
    parent to merge into the job timeline.
    """
    token = indexed[0][0] if indexed else -1
    if injector is not None:
        injector.on_chunk_start(token, attempt)
    cache = getattr(evaluator, "cache", None)
    if cache is None:  # e.g. CompositeProgram: its evaluators share the global
        cache = get_eval_cache()
    cache_base = cache.counters()
    metrics_base = get_metrics().snapshot()
    collector = SpanCollector()
    trace_token = _trace.activate_remote(trace_ctx)
    span_token = activate(collector, enabled=profile)
    # A forked worker inherits the dispatcher's open span names; the
    # trace context already carries them, so chunk spans start clean.
    stack_token = reset_stack()
    chunk_started = time.perf_counter()
    try:
        if trace_token is not None:
            with span(
                "chunk[%d]" % token,
                configs=len(indexed),
                pid=os.getpid(),
                attempt=attempt,
            ):
                pairs = _evaluate_pairs(evaluator, indexed)
        else:
            pairs = _evaluate_pairs(evaluator, indexed)
    finally:
        get_metrics().histogram("engine.chunk_seconds").observe(
            time.perf_counter() - chunk_started
        )
        restore_stack(stack_token)
        restore(span_token)
        if trace_token is not None:
            _trace.deactivate(trace_token)
    payload: _ChunkPayload = (
        pairs,
        collector.snapshot() if profile else [],
        get_metrics().diff(metrics_base),
        _diff_cache_counters(cache.counters(), cache_base),
        trace_token[1].snapshot() if trace_token is not None else [],
    )
    if injector is not None:
        payload = injector.mangle_payload(token, attempt, payload)
    return payload


def _validate_payload(
    payload: Any, indexed: _Chunk
) -> _ChunkPayload:
    """Structural check of a worker payload; corrupt ones are transient."""
    try:
        pairs, spans, metrics_delta, cache_delta, trace_events = payload
    except (TypeError, ValueError):
        raise CorruptPayloadError(
            "worker payload has the wrong shape"
        ) from None
    try:
        returned = {index for index, _ in pairs}
        typed = all(
            isinstance(estimate, PerformanceEstimate) for _, estimate in pairs
        )
    except (TypeError, ValueError):
        raise CorruptPayloadError("worker estimates are malformed") from None
    if returned != {index for index, _ in indexed} or not typed:
        raise CorruptPayloadError(
            "worker returned estimates for the wrong configurations"
        )
    if (
        not isinstance(spans, list)
        or not isinstance(metrics_delta, dict)
        or not isinstance(trace_events, list)
    ):
        raise CorruptPayloadError("worker observability payload is malformed")
    if not isinstance(cache_delta, dict) or any(
        not isinstance(row, dict)
        or any(isinstance(v, bool) or not isinstance(v, int) for v in row.values())
        for row in cache_delta.values()
    ):
        raise CorruptPayloadError("worker cache delta is malformed")
    return payload


def _group_key(evaluator: Any, config: CacheConfig):
    """The trace identity of a configuration (chunk boundary criterion)."""
    workload = getattr(evaluator, "workload", None)
    if workload is not None:
        return workload.trace_key(config)
    return (config.size, config.line_size, config.tiling)


class ParallelSweep:
    """Evaluate configurations across processes with deterministic order.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` uses the machine's CPU count.  ``jobs <= 1``
        runs serially.
    chunk_size:
        Minimum configurations per task; ``None`` picks a size that gives
        each worker a few chunks for load balancing.  Chunks never split a
        trace group, so each trace is generated by at most one worker.
    resilience:
        Retry/timeout/checkpoint behaviour
        (:class:`~repro.engine.resilience.ResilienceOptions`); the default
        retries transient chunk failures but journals nothing.
    on_progress:
        Optional ``(done, total)`` callback fired from the parent process
        whenever completed configurations are committed (a chunk finishes
        or a resume loads journaled work).  It runs on the executor's
        threads and must be cheap and non-raising; the exploration
        service uses it to stream job progress.  Only the resilient
        executor reports -- the historical direct path (no explicit
        resilience, tiny/serial sweep) stays bare.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        resilience: Optional[ResilienceOptions] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("job count must be at least 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk size must be at least 1")
        self.chunk_size = chunk_size
        self._explicit_resilience = resilience is not None
        self.resilience = (
            resilience if resilience is not None else ResilienceOptions()
        )
        self.on_progress = on_progress
        self._progress_total = 0

    def _chunks(
        self, evaluator: Any, configs: Sequence[CacheConfig]
    ) -> List[_Chunk]:
        # Consecutive configurations sharing a trace stay together.
        groups: List[_Chunk] = []
        last_key: Any = object()
        for index, config in enumerate(configs):
            key = _group_key(evaluator, config)
            if not groups or key != last_key:
                groups.append([])
                last_key = key
            groups[-1].append((index, config))
        target = self.chunk_size
        if target is None:
            target = max(1, len(configs) // max(1, self.jobs * 4))
        chunks: List[_Chunk] = []
        for group in groups:
            if chunks and len(chunks[-1]) < target:
                chunks[-1].extend(group)
            else:
                chunks.append(list(group))
        return chunks

    def run(
        self, evaluator: Any, configs: Sequence[CacheConfig]
    ) -> List[PerformanceEstimate]:
        """Evaluate ``configs`` (already ordered) and return estimates in order.

        ``evaluator`` is anything with a picklable ``evaluate(config)``
        method -- an :class:`~repro.engine.evaluator.Evaluator`, a
        :class:`~repro.core.composite.CompositeProgram`, etc.
        """
        configs = list(configs)
        opts = self.resilience
        # Without explicit resilience options, tiny/serial sweeps keep the
        # historical direct path (raw exceptions, no journal, no wrapping).
        if not self._explicit_resilience and (
            self.jobs <= 1 or len(configs) <= 1
        ):
            pairs = _evaluate_pairs(evaluator, list(enumerate(configs)))
            return [estimate for _, estimate in pairs]
        journal, tagged = self._open_journal(evaluator, configs, opts)
        self._progress_total = len(configs)
        self._report_progress(tagged)
        try:
            self._check_cancel(opts, tagged)
            pending = self._pending_chunks(evaluator, configs, tagged)
            logger.debug(
                "dispatching %d configs as %d chunks (%d resumed) to %d workers",
                len(configs),
                len(pending),
                len(tagged),
                self.jobs,
            )
            if self.jobs <= 1 or len(pending) <= 1:
                self._run_chunks_serial(evaluator, pending, opts, journal, tagged)
            else:
                self._run_chunks_parallel(
                    evaluator, pending, opts, journal, tagged
                )
        finally:
            if journal is not None:
                journal.close()
        return [tagged[index] for index in range(len(configs))]

    # ------------------------------------------------------------------
    # checkpoint plumbing

    def _open_journal(
        self,
        evaluator: Any,
        configs: Sequence[CacheConfig],
        opts: ResilienceOptions,
    ) -> Tuple[Optional[SweepCheckpoint], Dict[int, PerformanceEstimate]]:
        if opts.checkpoint is None:
            return None, {}
        journal = SweepCheckpoint(opts.checkpoint)
        fingerprint = sweep_fingerprint(evaluator, configs)
        done: Dict[int, PerformanceEstimate] = {}
        if opts.resume:
            loaded = journal.load(fingerprint)
            done = {
                index: estimate
                for index, estimate in loaded.items()
                if 0 <= index < len(configs)
            }
            if done:
                get_metrics().counter("resilience.resumed_configs").inc(
                    len(done)
                )
                logger.info(
                    "resuming sweep from %s: %d of %d configs already done",
                    opts.checkpoint,
                    len(done),
                    len(configs),
                )
        journal.open_for_append(
            fingerprint, fresh=not opts.resume, configs=len(configs)
        )
        return journal, done

    def _pending_chunks(
        self,
        evaluator: Any,
        configs: Sequence[CacheConfig],
        tagged: Dict[int, PerformanceEstimate],
    ) -> List[_Chunk]:
        pending: List[_Chunk] = []
        for chunk in self._chunks(evaluator, configs):
            rest = [(i, c) for i, c in chunk if i not in tagged]
            if rest:
                pending.append(rest)
        return pending

    def _commit(
        self,
        evaluator: Any,
        pairs: Sequence[Tuple[int, PerformanceEstimate]],
        payload: Optional[_ChunkPayload],
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
    ) -> None:
        """Fold one completed chunk into the sweep (merge, tag, journal)."""
        if payload is not None:
            self._merge_payload(evaluator, payload)
        for index, estimate in pairs:
            tagged[index] = estimate
        if journal is not None:
            journal.record_chunk(sorted(pairs, key=lambda pair: pair[0]))
            get_metrics().counter("resilience.checkpoint_chunks").inc()
        if self.resilience.breaker is not None:
            self.resilience.breaker.record_success()
        self._report_progress(tagged)

    def _report_progress(
        self, tagged: Dict[int, PerformanceEstimate]
    ) -> None:
        """Fire the ``on_progress`` hook (never lets it break the sweep)."""
        if self.on_progress is None:
            return
        try:
            self.on_progress(len(tagged), self._progress_total)
        except Exception:  # pragma: no cover - defensive
            logger.warning("on_progress hook raised; ignoring", exc_info=True)

    def _check_cancel(
        self, opts: ResilienceOptions, tagged: Dict[int, PerformanceEstimate]
    ) -> None:
        """Raise :class:`SweepCancelledError` if the cancel event is set.

        The journal stays on disk -- committed chunks are durable -- so a
        resubmission of the same sweep resumes instead of restarting.
        """
        event = opts.cancel_event
        if event is None or not event.is_set():
            return
        get_metrics().counter("resilience.sweeps_cancelled").inc()
        raise SweepCancelledError(
            "sweep cancelled after %d of %d configurations"
            % (len(tagged), self._progress_total),
            done=len(tagged),
            total=self._progress_total,
        )

    def _record_chunk_failure(self, opts: ResilienceOptions) -> None:
        """Feed one chunk failure to the breaker; raise once it opens."""
        breaker = opts.breaker
        if breaker is not None and breaker.record_failure():
            raise CircuitOpenError(
                "circuit breaker %s opened mid-sweep; abandoning the sweep"
                % (breaker.name or "<unnamed>"),
                retry_after_s=breaker.retry_after_s(),
            )

    def _interruptible_sleep(
        self, opts: ResilienceOptions, delay_s: float
    ) -> None:
        """Back off before a retry, waking early on cancellation."""
        if opts.cancel_event is not None:
            opts.cancel_event.wait(delay_s)
        else:
            time.sleep(delay_s)

    def _merge_payload(self, evaluator: Any, payload: _ChunkPayload) -> None:
        """Fold one worker's observability payload into this process."""
        cache = getattr(evaluator, "cache", None)
        if cache is None:
            cache = get_eval_cache()
        _, span_snapshot, metrics_delta, cache_delta, trace_events = payload
        if span_snapshot:
            get_collector().merge(span_snapshot)
        get_metrics().merge(metrics_delta)
        cache.merge_remote(cache_delta)
        if trace_events:
            recorder = _trace.current_trace()
            if recorder is not None:
                recorder.merge(trace_events)

    # ------------------------------------------------------------------
    # serial paths (jobs=1, tiny sweeps, degraded chunks, no-fork sandboxes)

    def _evaluate_clean(
        self, evaluator: Any, indexed: _Chunk
    ) -> List[Tuple[int, PerformanceEstimate]]:
        """In-parent evaluation; deterministic failures name the chunk."""
        started = time.perf_counter()
        try:
            if _trace.trace_active():
                with span(
                    "chunk[%d]" % indexed[0][0],
                    configs=len(indexed),
                    pid=os.getpid(),
                    serial=True,
                ):
                    return _evaluate_pairs(evaluator, indexed)
            return _evaluate_pairs(evaluator, indexed)
        except Exception as exc:
            if self.resilience.breaker is not None:
                self.resilience.breaker.record_failure()
            raise SweepChunkError.from_chunk(indexed, exc) from exc
        finally:
            get_metrics().histogram("engine.chunk_seconds").observe(
                time.perf_counter() - started
            )

    def _run_chunks_serial(
        self,
        evaluator: Any,
        pending: Sequence[_Chunk],
        opts: ResilienceOptions,
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
    ) -> None:
        for indexed in pending:
            self._check_cancel(opts, tagged)
            pairs = self._serial_chunk_with_retries(evaluator, indexed, opts)
            self._commit(evaluator, pairs, None, journal, tagged)

    def _serial_chunk_with_retries(
        self, evaluator: Any, indexed: _Chunk, opts: ResilienceOptions
    ) -> List[Tuple[int, PerformanceEstimate]]:
        """One chunk in-process, honouring the injector and retry policy."""
        injector = opts.fault_injector
        metrics = get_metrics()
        token = indexed[0][0]
        attempt = 0
        while True:
            self._check_cancel(opts, {})
            try:
                if injector is not None:
                    injector.on_chunk_start(token, attempt)
                return self._evaluate_clean(evaluator, indexed)
            except TransientChunkError as exc:
                metrics.counter("resilience.chunk_failures").inc()
                self._record_chunk_failure(opts)
                if attempt >= opts.retry.max_retries:
                    metrics.counter("resilience.degraded_chunks").inc()
                    logger.warning(
                        "chunk at index %d exhausted %d retries (%s); "
                        "degrading to clean serial evaluation",
                        token,
                        opts.retry.max_retries,
                        exc,
                    )
                    return self._evaluate_clean(evaluator, indexed)
                metrics.counter("resilience.chunk_retries").inc()
                self._interruptible_sleep(opts, opts.retry.delay_s(attempt, token))
                attempt += 1

    def _environment_fallback(
        self,
        evaluator: Any,
        chunks: Sequence[_Chunk],
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
        exc: BaseException,
    ) -> None:
        """No fork / no pickling here: finish every unfinished chunk serially.

        Only chunks that never merged a worker payload are re-evaluated, so
        counters stay truthful after the degradation.
        """
        logger.warning(
            "parallel sweep (jobs=%d) fell back to serial execution: %s",
            self.jobs,
            exc,
        )
        get_metrics().counter("parallel.serial_fallbacks").inc()
        for indexed in chunks:
            pairs = self._evaluate_clean(evaluator, indexed)
            self._commit(evaluator, pairs, None, journal, tagged)

    def _degrade_chunk(
        self,
        evaluator: Any,
        indexed: _Chunk,
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
    ) -> None:
        """Retries exhausted: evaluate this one chunk cleanly in-parent."""
        get_metrics().counter("resilience.degraded_chunks").inc()
        logger.warning(
            "chunk at index %d exhausted its retries; "
            "evaluating it serially in-parent",
            indexed[0][0],
        )
        pairs = self._evaluate_clean(evaluator, indexed)
        self._commit(evaluator, pairs, None, journal, tagged)

    # ------------------------------------------------------------------
    # the parallel executor proper

    def _run_chunks_parallel(
        self,
        evaluator: Any,
        pending: Sequence[_Chunk],
        opts: ResilienceOptions,
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
    ) -> None:
        retry = opts.retry
        attempts: Dict[int, int] = {chunk[0][0]: 0 for chunk in pending}
        queue: List[_Chunk] = list(pending)
        round_no = 0
        while queue:
            self._check_cancel(opts, tagged)
            overdue = [
                chunk for chunk in queue
                if attempts[chunk[0][0]] > retry.max_retries
            ]
            queue = [
                chunk for chunk in queue
                if attempts[chunk[0][0]] <= retry.max_retries
            ]
            for indexed in overdue:
                self._degrade_chunk(evaluator, indexed, journal, tagged)
            if not queue:
                break
            if round_no > 0:
                get_metrics().counter("resilience.chunk_retries").inc(
                    len(queue)
                )
                self._interruptible_sleep(
                    opts,
                    max(
                        retry.delay_s(
                            max(0, attempts[chunk[0][0]] - 1), chunk[0][0]
                        )
                        for chunk in queue
                    ),
                )
                self._check_cancel(opts, tagged)
            queue = self._dispatch_round(
                evaluator, queue, opts, attempts, journal, tagged
            )
            round_no += 1

    def _dispatch_round(
        self,
        evaluator: Any,
        queue: Sequence[_Chunk],
        opts: ResilienceOptions,
        attempts: Dict[int, int],
        journal: Optional[SweepCheckpoint],
        tagged: Dict[int, PerformanceEstimate],
    ) -> List[_Chunk]:
        """One pool round over ``queue``; returns the transient failures.

        Successes commit (merge + tag + journal) as they arrive.  A round
        that stalls past ``chunk_timeout_s`` without any completion
        abandons the pool -- hung workers are never joined -- and reports
        everything unfinished as timed out.  Environments that cannot run
        a pool finish the round serially and return no failures.
        """
        metrics = get_metrics()
        profile = profiling_enabled()
        injector = opts.fault_injector
        # Exported once per round: the trace context plus this thread's
        # open span path, so worker chunk events nest under our "sweep".
        trace_ctx = _trace.export_context(current_path())
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(queue))
            )
        except _ENVIRONMENT_ERRORS as exc:
            self._environment_fallback(evaluator, queue, journal, tagged, exc)
            return []
        transient: List[_Chunk] = []
        abandoned = False
        cancel = opts.cancel_event
        try:
            futures = {}
            for indexed in queue:
                token = indexed[0][0]
                futures[
                    pool.submit(
                        _evaluate_chunk,
                        evaluator,
                        indexed,
                        profile,
                        injector,
                        attempts[token],
                        trace_ctx,
                    )
                ] = indexed
            not_done = set(futures)
            # The watchdog window is measured from the last completion, so
            # slicing the wait below (for cancellation responsiveness)
            # never changes when "no progress for a whole window" fires.
            last_progress = time.monotonic()
            while not_done:
                if cancel is not None and cancel.is_set():
                    for future in not_done:
                        future.cancel()
                    self._check_cancel(opts, tagged)
                if cancel is not None:
                    wait_timeout: Optional[float] = 0.2
                    if opts.chunk_timeout_s is not None:
                        stalled_for = time.monotonic() - last_progress
                        wait_timeout = min(
                            0.2, max(0.0, opts.chunk_timeout_s - stalled_for)
                        )
                else:
                    wait_timeout = opts.chunk_timeout_s
                done, not_done = concurrent.futures.wait(
                    not_done,
                    timeout=wait_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if not done:
                    if opts.chunk_timeout_s is None or (
                        time.monotonic() - last_progress
                        < opts.chunk_timeout_s
                    ):
                        # A cancellation-poll slice expired, not the
                        # watchdog window; keep waiting.
                        continue
                    # Watchdog fired: nothing completed for a whole
                    # timeout window, so the in-flight chunks are wedged.
                    for future in not_done:
                        indexed = futures[future]
                        attempts[indexed[0][0]] += 1
                        transient.append(indexed)
                        future.cancel()
                    metrics.counter("resilience.chunk_timeouts").inc(
                        len(not_done)
                    )
                    logger.warning(
                        "parallel sweep: %d chunk(s) made no progress in "
                        "%.3gs; abandoning them for re-dispatch",
                        len(not_done),
                        opts.chunk_timeout_s,
                    )
                    for _ in range(len(not_done)):
                        self._record_chunk_failure(opts)
                    abandoned = True
                    break
                last_progress = time.monotonic()
                for future in done:
                    indexed = futures[future]
                    token = indexed[0][0]
                    try:
                        payload = _validate_payload(future.result(), indexed)
                    except _TRANSIENT_ERRORS as exc:
                        attempts[token] += 1
                        transient.append(indexed)
                        metrics.counter("resilience.chunk_failures").inc()
                        logger.warning(
                            "chunk at index %d failed transiently "
                            "(attempt %d): %s",
                            token,
                            attempts[token],
                            exc,
                        )
                        self._record_chunk_failure(opts)
                    except _ENVIRONMENT_ERRORS as exc:
                        remaining = [indexed]
                        remaining.extend(futures[f] for f in not_done)
                        remaining.extend(transient)
                        for f in not_done:
                            f.cancel()
                        self._environment_fallback(
                            evaluator, remaining, journal, tagged, exc
                        )
                        return []
                    except Exception as exc:
                        for f in not_done:
                            f.cancel()
                        if opts.breaker is not None:
                            opts.breaker.record_failure()
                        raise SweepChunkError.from_chunk(indexed, exc) from exc
                    else:
                        self._commit(
                            evaluator, payload[0], payload, journal, tagged
                        )
                        metrics.counter("parallel.chunks_completed").inc()
        except (CircuitOpenError, SweepCancelledError):
            # Fail fast: never join workers we are abandoning on purpose.
            abandoned = True
            raise
        finally:
            # A broken pool shuts down instantly; an abandoned one must not
            # be joined (its hung workers are exactly what we are escaping).
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        return transient
