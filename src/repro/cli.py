"""Command-line driver: ``memexplore`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

``list``
    Show the bundled kernels.
``explore``
    Run Algorithm MemExplore over one kernel and print the estimate table,
    the Pareto frontier, and the bounded selections.
``mincache``
    The Section 3 report: equivalence classes, minimum line counts and the
    minimum conflict-free cache size per line size.
``layout``
    Show the Section 4.1 off-chip assignment for a kernel and geometry.
``mpeg``
    The Section 5 composite case study over the MPEG decoder kernels.
``spm``
    Cache-vs-scratchpad comparison over on-chip byte budgets.
``trace``
    Export a kernel's address trace in Dinero ``din`` format, or report
    its reuse profile and miss-ratio curve.
``search``
    Pruned (greedy) exploration instead of the exhaustive sweep.
``pareto``
    Multi-objective Pareto search (``repro.moo``): a population-based
    searcher (NSGA-II by default) finds the energy/time/area front
    touching a fraction of the grid, printing one front line per
    generation; ``--server`` submits the same search to a running
    service (``POST /pareto``) and streams its ``repro.front/1`` events.
``datasheet``
    Full per-configuration report: metrics, miss structure, area, timing
    and the energy component breakdown.
``codegen``
    Emit the transformed C source (padded arrays, tiled loops) for a
    kernel and configuration -- the exploration's practical deliverable.
``sensitivity``
    Tornado analysis: which model constants the chosen configuration
    actually hinges on.
``stats``
    Run a profiled sweep and print the per-stage timing / cache-hit table
    (the human face of the observability layer); ``--from FILE.json``
    renders a previously written report instead.
``serve``
    Run the exploration service: an HTTP/JSON job queue with request
    coalescing and the persistent sqlite result store (``repro.serve``).
    Multi-tenant knobs: ``--client-rate`` / ``--client-burst`` /
    ``--client-inflight`` set the default per-client admission policy,
    ``--client-weight NAME=W`` (repeatable) skews the fair-share
    dequeue, ``--breaker-threshold`` / ``--breaker-cooldown`` tune the
    per-evaluator circuit breakers.
``submit``
    Submit a sweep to a running service and (by default) wait for the
    result table; ``--client`` names the submitting tenant and
    ``--deadline`` bounds the job's wall clock.
``jobs``
    List a service's jobs, or show/await one job (``--manifest`` prints
    the job's ``repro.manifest/1`` provenance document, ``--cancel``
    cancels it).
``store``
    Offline result-store maintenance: ``store verify`` audits every
    row's sha256 checksum; ``--repair`` quarantines corrupt rows,
    backfills legacy checksums, and rebuilds estimates from checkpoint
    journals.
``top``
    Live dashboard for a running service: queue depth, jobs in flight,
    configs/s, store hit rate and latency percentiles, redrawn on an
    interval.
``plugins``
    List every registered component -- backends, kernels, energy models,
    SRAM parts, store tiers -- with the origin and version that provided
    it (built-ins and installed ``repro.plugins`` entry points alike).

Every subcommand additionally accepts the observability flags
``--log-level`` / ``--log-json`` (structured logging for the ``repro``
logger hierarchy), ``--profile`` (collect spans and print the per-stage
table) and ``--metrics-out FILE.json`` (write the machine-readable
``repro.obs/1`` report).  The sweeping subcommands (``explore``,
``mpeg``, ``spm``, ``stats``) also take the resilience flags
``--checkpoint FILE.jsonl`` / ``--resume`` / ``--chunk-timeout`` /
``--max-retries`` for fault-tolerant, resumable sweeps, and (with
``search``) ``--manifest-out FILE.json`` to write the run's
``repro.manifest/1`` provenance document.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import obs
from repro.core.composite import CompositeProgram
from repro.core.config import CacheConfig, design_space, powers_of_two
from repro.core.explorer import ExplorationResult, MemExplorer
from repro.core.pareto import pareto_front
from repro.core.selection import SelectionError, select_configuration
from repro.energy import (
    available_energy_models,
    available_srams,
    get_energy_model,
    get_sram,
)
from repro.energy.model import EnergyModel
from repro.engine import available_backends, get_eval_cache
from repro.kernels import available_kernels, get_kernel, mpeg_decoder_kernels
from repro.loops.reuse import group_references, min_cache_lines, min_cache_size

__all__ = ["main"]


def _package_version() -> str:
    """The installed package version, from metadata when available.

    A source checkout run via ``PYTHONPATH=src`` has no installed
    distribution; fall back to the package's own ``__version__``.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


class CLIError(Exception):
    """A user-facing CLI failure: message on stderr, exit code 2."""


def _resolve_kernel(name: str):
    """Build a kernel through the plugin registry, or fail helpfully.

    Every kernel-taking subcommand funnels through this one resolver, so
    an unknown name produces one consistent message -- with a did-you-mean
    suggestion -- instead of a per-command traceback.
    """
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("kernel", name)
    except UnknownPluginError as exc:
        hint = f"; did you mean {exc.suggestion!r}?" if exc.suggestion else ""
        raise CLIError(
            f"unknown kernel {name!r}{hint} "
            f"(run 'memexplore list' to see every registered kernel)"
        ) from None


def _add_energy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sram",
        default="CY7C-2Mbit",
        choices=available_srams(),
        help="off-chip SRAM part supplying Em (default: the paper's Cypress)",
    )
    parser.add_argument(
        "--energy-model",
        default="hwo",
        choices=available_energy_models(),
        help="cache energy model (default: the paper's Hicks/Walnock/Owens)",
    )
    parser.add_argument(
        "--no-layout-opt",
        action="store_true",
        help="use the dense unoptimized off-chip layout",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="auto",
        choices=available_backends(),
        help="miss-measurement backend (default: auto, the exact "
        "one-pass grid path for cold sweeps)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate the sweep across N processes (default: serial)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("resilience (fault-tolerant sweeps)")
    group.add_argument(
        "--checkpoint",
        metavar="FILE.jsonl",
        default=None,
        help="journal completed sweep chunks to this append-only file",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip configurations already journaled in --checkpoint",
    )
    group.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a worker chunk wedged after this many seconds",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-dispatch a failing chunk up to N times (default: 2)",
    )


def _resilience(args: argparse.Namespace):
    """Build :class:`ResilienceOptions` from the CLI flags (or ``None``)."""
    if (
        args.checkpoint is None
        and not args.resume
        and args.chunk_timeout is None
        and args.max_retries is None
    ):
        return None
    from repro.engine.resilience import ResilienceOptions, RetryPolicy

    retry = RetryPolicy()
    if args.max_retries is not None:
        retry = RetryPolicy(max_retries=args.max_retries)
    return ResilienceOptions(
        checkpoint=args.checkpoint,
        resume=args.resume,
        chunk_timeout_s=args.chunk_timeout,
        retry=retry,
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error", "critical"),
        help="log level for the repro logger hierarchy (default: warning)",
    )
    obs_group.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of text",
    )
    obs_group.add_argument(
        "--profile",
        action="store_true",
        help="collect per-stage spans and print the timing table afterwards",
    )
    obs_group.add_argument(
        "--metrics-out",
        metavar="FILE.json",
        default=None,
        help="write the machine-readable repro.obs/1 report here",
    )


def _energy_model(args: argparse.Namespace) -> EnergyModel:
    return get_energy_model(
        getattr(args, "energy_model", "hwo"), sram=get_sram(args.sram)
    )


def _add_manifest_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--manifest-out",
        metavar="FILE.json",
        default=None,
        help="write the run's repro.manifest/1 provenance document here",
    )


def _write_manifest(
    args: argparse.Namespace,
    kernels: Sequence[str],
    evaluator=None,
    configs=None,
) -> None:
    """Serialise the run's ``repro.manifest/1`` document (``--manifest-out``).

    ``kernels`` are registry kernel names; ``evaluator`` (when the command
    has one) contributes the store-level evaluator fingerprint, and
    ``configs`` (the swept list, in order) the sweep fingerprint.
    """
    if getattr(args, "manifest_out", None) is None:
        return
    from repro.registry import MANIFEST_SCHEMA, build_manifest

    eval_id = None
    sweep_fp = None
    if evaluator is not None:
        from repro.serve.store import evaluator_fingerprint

        eval_id = evaluator_fingerprint(evaluator)
        if configs is not None:
            from repro.engine.resilience import sweep_fingerprint

            sweep_fp = sweep_fingerprint(evaluator, list(configs))
    resilience = _resilience(args) if hasattr(args, "checkpoint") else None
    seed = resilience.retry.seed if resilience is not None else 0
    plugins = [("kernel", name) for name in kernels]
    plugins.append(("backend", args.backend))
    plugins.append(("energy", getattr(args, "energy_model", "hwo")))
    plugins.append(("sram", args.sram))
    manifest = build_manifest(
        plugins,
        eval_id=eval_id,
        sweep_fingerprint=sweep_fp,
        seeds={"retry_backoff": seed},
    )
    with open(args.manifest_out, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {MANIFEST_SCHEMA} manifest to {args.manifest_out}",
        file=sys.stderr,
    )


def _print_table(result: ExplorationResult, stream) -> None:
    stream.write(f"{'config':>14s} {'miss rate':>10s} {'cycles':>12s} {'energy (nJ)':>12s}\n")
    for label, mr, cycles, energy in result.to_rows():
        stream.write(f"{label:>14s} {mr:>10.4f} {cycles:>12.0f} {energy:>12.0f}\n")


def _cmd_list(args: argparse.Namespace) -> int:
    for name in available_kernels():
        kernel = get_kernel(name)
        print(
            f"{name:15s} loops={len(kernel.nest.loops)} refs={len(kernel.nest.refs)} "
            f"iterations={kernel.nest.iterations} invocations={kernel.invocations}"
        )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    kernel = _resolve_kernel(args.kernel)
    explorer = MemExplorer(
        kernel,
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
        backend=args.backend,
    )
    result = explorer.explore(
        max_size=args.max_size,
        min_size=args.min_size,
        ways=tuple(args.ways),
        tilings=tuple(args.tilings) if args.tilings else None,
        jobs=args.jobs,
        resilience=_resilience(args),
    )
    _write_manifest(
        args,
        [args.kernel],
        evaluator=explorer.evaluator,
        configs=[estimate.config for estimate in result.estimates],
    )
    _print_table(result, sys.stdout)
    print("\nPareto frontier (cycles vs energy):")
    for estimate in pareto_front(result.estimates):
        print(f"  {estimate}")
    try:
        selection = select_configuration(
            result.estimates,
            objective=args.objective,
            cycle_bound=args.cycle_bound,
            energy_bound=args.energy_bound,
        )
        print(f"\n{selection}")
    except SelectionError as exc:
        print(f"\nselection failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_mincache(args: argparse.Namespace) -> int:
    kernel = _resolve_kernel(args.kernel)
    nest = kernel.nest
    print(f"kernel {kernel.name}: {nest}")
    print("\nequivalence classes / cases:")
    for group in group_references(nest):
        refs = ", ".join(str(nest.refs[i]) for i in group.ref_indices)
        print(f"  array {group.array:8s} offsets {group.offsets}: {refs}")
    print("\nminimum conflict-free cache, by line size:")
    for line_size in args.line_sizes:
        lines = min_cache_lines(nest, line_size)
        size = min_cache_size(nest, line_size)
        print(f"  L={line_size:<4d} lines={lines:<4d} size={size} bytes")
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    kernel = _resolve_kernel(args.kernel)
    assignment = kernel.optimized_layout(args.cache_size, args.line_size)
    print(
        f"assignment for {kernel.name} @ C{args.cache_size}L{args.line_size}: "
        f"conflict_free={assignment.conflict_free}"
    )
    for name, placement in assignment.layout.placements:
        print(f"  {name:10s} base={placement.base:<8d} pitches={placement.pitches}")
    for ref_index, slot in assignment.slots:
        print(f"  group anchored at ref #{ref_index} -> line slot {slot}")
    return 0


def _cmd_mpeg(args: argparse.Namespace) -> int:
    program = CompositeProgram(
        mpeg_decoder_kernels(args.macroblocks),
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
        backend=args.backend,
    )
    configs = list(
        design_space(
            max_size=args.max_size,
            min_size=args.min_size,
            max_line=16,
            tilings=(1, 2, 4, 8, 16),
        )
    )
    result = program.explore(configs, jobs=args.jobs, resilience=_resilience(args))
    _write_manifest(
        args,
        [f"mpeg:{name}" for name in sorted(k.name for k in program.kernels)],
        evaluator=program,
        configs=configs,
    )
    best_e = result.min_energy()
    best_t = result.min_cycles()
    print(f"explored {len(result)} configurations over {len(program.kernels)} kernels")
    print(f"min energy: {best_e}")
    print(f"min time:   {best_t}")
    print("\nper-kernel minimum-energy configurations (Figure 10):")
    for name, (config, energy) in program.per_kernel_optima(configs).items():
        print(f"  {name:10s} {str(config):>16s} {energy:12.0f} nJ")
    return 0


def _cmd_spm(args: argparse.Namespace) -> int:
    from repro.spm.explorer import compare_cache_vs_spm

    kernel = _resolve_kernel(args.kernel)
    rows = compare_cache_vs_spm(
        kernel,
        budgets=args.budgets,
        energy_model=_energy_model(args),
        backend=args.backend,
        jobs=args.jobs,
        resilience=_resilience(args),
    )
    _write_manifest(args, [args.kernel])
    print(f"{'budget':>8s} {'cache nJ':>10s} {'spm nJ':>10s} "
          f"{'spm hit':>8s} {'E winner':>9s} {'t winner':>9s}")
    for row in rows:
        print(
            f"{row.budget:>8d} {row.cache.energy_nj:>10.0f} "
            f"{row.spm.energy_nj:>10.0f} {row.spm.hit_fraction:>8.3f} "
            f"{row.energy_winner:>9s} {row.cycle_winner:>9s}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.cache.dinero import write_din_trace
    from repro.cache.distance import miss_ratio_curve, reuse_profile

    kernel = _resolve_kernel(args.kernel)
    if args.optimized:
        layout = kernel.optimized_layout(args.cache_size, args.line_size).layout
    else:
        layout = kernel.default_layout()
    trace = kernel.trace(layout=layout, tile=args.tile)
    if args.din:
        count = write_din_trace(trace, args.din)
        print(f"wrote {count} accesses to {args.din}")
        return 0
    profile = reuse_profile(trace, args.line_size)
    print(f"trace: {len(trace)} accesses ({trace.num_reads} reads)")
    print(f"footprint: {trace.footprint_bytes()} bytes, "
          f"{trace.unique_lines(args.line_size)} unique lines")
    print(f"compulsory fraction: {profile['compulsory_fraction']:.4f}")
    print(f"median / p90 stack distance: {profile['median_distance']:.0f} / "
          f"{profile['p90_distance']:.0f} lines")
    print(f"locality knee: {profile['knee_lines']} lines")
    capacities = [2 ** k for k in range(0, 9)]
    curve = miss_ratio_curve(trace, args.line_size, capacities)
    print("\nfully-associative miss-ratio curve:")
    for capacity in capacities:
        print(f"  {capacity:>4d} lines: {curve[capacity]:.4f}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.moo.heuristics import greedy_descent

    kernel = _resolve_kernel(args.kernel)
    explorer = MemExplorer(
        kernel,
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
        backend=args.backend,
    )
    outcome = greedy_descent(
        explorer.evaluator,
        objective=args.objective,
        sizes=tuple(powers_of_two(args.min_size, args.max_size)),
    )
    _write_manifest(args, [args.kernel], evaluator=explorer.evaluator)
    print(f"best ({args.objective}): {outcome.best}")
    print(f"evaluations spent: {outcome.evaluations}")
    return 0


def _search_settings(args: argparse.Namespace):
    """Build :class:`~repro.moo.SearchSettings` from the pareto flags."""
    from repro.moo import SearchSettings

    try:
        return SearchSettings(
            searcher=args.searcher,
            generations=args.generations,
            population=args.population,
            seed=args.seed,
            objectives=tuple(args.objectives),
            archive_capacity=args.archive_capacity,
            seed_population=not args.no_seed_population,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _front_line(event: dict) -> str:
    """One generation's progress line (identical local and served)."""
    hv = event.get("hypervolume")
    hv_text = "n/a" if hv is None else f"{hv:.6g}"
    return (
        f"gen {event['generation']:>3d}: "
        f"evaluations={event['evaluations']:>5d} "
        f"front={event['archive_size']:>3d} "
        f"hypervolume={hv_text}"
    )


def _print_front(estimates, objectives) -> None:
    """The final front table: one row per non-dominated configuration."""
    from repro.moo import objective_vector

    header = f"{'config':>14s}" + "".join(
        f" {name:>14s}" for name in objectives
    )
    print(header)
    for estimate in estimates:
        vector = objective_vector(estimate, objectives)
        row = f"{estimate.config.label():>14s}" + "".join(
            f" {value:>14.6g}" for value in vector
        )
        print(row)


def _cmd_pareto(args: argparse.Namespace) -> int:
    if args.server is not None:
        return _pareto_remote(args)
    from repro.engine.resilience import CheckpointError
    from repro.moo import run_search

    settings = _search_settings(args)
    kernel = _resolve_kernel(args.kernel)
    explorer = MemExplorer(
        kernel,
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
        backend=args.backend,
    )
    space = list(
        design_space(
            max_size=args.max_size,
            min_size=args.min_size,
            ways=tuple(args.ways),
            tilings=tuple(args.tilings) if args.tilings else None,
        )
    )
    try:
        run = run_search(
            explorer.evaluator,
            space,
            settings,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            resume=args.resume,
            on_generation=lambda event, archive: print(_front_line(event)),
        )
    except CheckpointError as exc:
        raise CLIError(str(exc)) from None
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    _write_manifest(
        args,
        [args.kernel],
        evaluator=explorer.evaluator,
        configs=[estimate.config for estimate in run.estimates],
    )
    print(
        f"\nfront after {run.generations} generations, "
        f"{run.evaluations} of {len(space)} configurations evaluated "
        f"(hypervolume {run.hypervolume:.6g}):"
    )
    _print_front(run.front, settings.objectives)
    return 0


def _pareto_remote(args: argparse.Namespace) -> int:
    """``pareto --server``: submit to ``POST /pareto`` and stream fronts."""
    from repro.serve import JobSpec, ServeClient, ServeError

    settings = _search_settings(args)
    if args.checkpoint is not None or args.resume:
        raise CLIError(
            "--checkpoint/--resume are local-run flags; a served search "
            "journals (and resumes) server-side automatically"
        )
    if getattr(args, "energy_model", "hwo") != "hwo":
        raise CLIError(
            "the exploration service does not support --energy-model; "
            "served searches always use the paper's 'hwo' model"
        )
    try:
        client = ServeClient(args.server, client_id=args.client)
        spec = JobSpec(
            kernel=args.kernel,
            backend=args.backend,
            max_size=args.max_size,
            min_size=args.min_size,
            ways=tuple(args.ways),
            tilings=tuple(args.tilings) if args.tilings else None,
            sram=args.sram,
            optimize_layout=not args.no_layout_opt,
            search=settings,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    try:
        job = client.pareto(
            spec, priority=args.priority, deadline_s=args.deadline
        )
    except ServeError as exc:
        raise CLIError(str(exc)) from None
    flag = " (coalesced)" if job.get("coalesced") else ""
    print(f"job {job['job_id']}{flag}", file=sys.stderr)
    if args.no_wait:
        print(job["job_id"])
        return 0
    try:
        for event in client.fronts(job["job_id"]):
            print(_front_line(event))
        finished = client.wait(job["job_id"], timeout_s=args.timeout)
    except ServeError as exc:
        raise CLIError(str(exc)) from None
    if finished["state"] != "done":
        print(
            f"job {job['job_id']} {finished['state']}: "
            f"{finished.get('error')}",
            file=sys.stderr,
        )
        return 1
    result = client.result(job["job_id"])
    print(f"\nfinal front ({len(result)} configurations):")
    _print_front(result.estimates, settings.objectives)
    return 0


def _cmd_datasheet(args: argparse.Namespace) -> int:
    from repro.core.report import datasheet, render_datasheet

    kernel = _resolve_kernel(args.kernel)
    config = CacheConfig(args.cache_size, args.line_size, args.ways, args.tiling)
    sheet = datasheet(
        kernel,
        config,
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
    )
    print(render_datasheet(sheet))
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.loops.codegen import generate_c

    kernel = _resolve_kernel(args.kernel)
    if args.no_layout_opt:
        layout = kernel.default_layout()
    else:
        layout = kernel.optimized_layout(args.cache_size, args.line_size).layout
    print(
        generate_c(
            kernel.nest, layout=layout, tile=args.tiling,
            n_tiled=kernel.n_tiled,
        )
    )
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import tornado

    kernel = _resolve_kernel(args.kernel)
    configs = [
        CacheConfig(t, l)
        for t in powers_of_two(args.min_size, args.max_size)
        for l in (4, 8, 16, 32)
        if l <= t
    ]
    rows = tornado(kernel, configs)
    print(f"{'parameter':>22s} {'swing':>8s} {'E @ 0.5x':>10s} "
          f"{'E @ 2x':>10s} {'winner?':>8s}")
    for row in rows:
        flag = "MOVES" if row.winner_changes else "stable"
        print(
            f"{row.parameter:>22s} {row.swing:>8.2%} {row.low_energy:>10.0f} "
            f"{row.high_energy:>10.0f} {flag:>8s}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if getattr(args, "from_file", None) is not None:
        return _stats_from_file(args.from_file)
    if args.kernel is None:
        raise CLIError("stats needs a kernel (or --from FILE.json)")
    kernel = _resolve_kernel(args.kernel)
    explorer = MemExplorer(
        kernel,
        energy_model=_energy_model(args),
        optimize_layout=not args.no_layout_opt,
        backend=args.backend,
    )
    # This command exists to show the profile: spans are always on here,
    # whether or not --profile was also passed.
    was_profiling = obs.profiling_enabled()
    obs.enable_profiling()
    try:
        result = explorer.explore(
            max_size=args.max_size,
            min_size=args.min_size,
            ways=tuple(args.ways),
            tilings=tuple(args.tilings) if args.tilings else None,
            jobs=args.jobs,
            resilience=_resilience(args),
        )
    finally:
        if not was_profiling:
            obs.disable_profiling()
    _write_manifest(
        args,
        [args.kernel],
        evaluator=explorer.evaluator,
        configs=[estimate.config for estimate in result.estimates],
    )
    print(
        f"swept {len(result)} configurations of {kernel.name} "
        f"(backend={args.backend}, jobs={args.jobs})\n"
    )
    report = obs.build_report(cache=get_eval_cache().snapshot())
    print(obs.render_stage_table(report))
    return 0


def _stats_from_file(path: str) -> int:
    """``stats --from``: render a previously written ``repro.obs/1`` report.

    Any way the file can disappoint -- missing, unreadable, not JSON, not
    a report document -- becomes one :class:`CLIError` line (exit 2), not
    a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise CLIError(f"cannot read metrics report {path!r}: "
                       f"{exc.strerror or exc}") from None
    except json.JSONDecodeError as exc:
        raise CLIError(
            f"corrupt metrics report {path!r}: not JSON ({exc})"
        ) from None
    if not isinstance(report, dict) or "schema" not in report:
        raise CLIError(
            f"corrupt metrics report {path!r}: not a repro.obs document"
        )
    if report["schema"] != obs.SCHEMA:
        raise CLIError(
            f"unsupported report schema {report['schema']!r} in {path!r} "
            f"(expected {obs.SCHEMA!r})"
        )
    print(obs.render_stage_table(report))
    return 0


def _job_spec(args: argparse.Namespace):
    """Build a service :class:`~repro.serve.JobSpec` from explore-style flags."""
    from repro.serve import JobSpec

    if getattr(args, "energy_model", "hwo") != "hwo":
        # The job spec carries no energy-model field: adding one would
        # change every spec hash, orphaning stored results.  Served sweeps
        # always run the paper's model.
        raise CLIError(
            "the exploration service does not support --energy-model; "
            "served sweeps always use the paper's 'hwo' model"
        )
    return JobSpec(
        kernel=args.kernel,
        backend=args.backend,
        max_size=args.max_size,
        min_size=args.min_size,
        ways=tuple(args.ways),
        tilings=tuple(args.tilings) if args.tilings else None,
        sram=args.sram,
        optimize_layout=not args.no_layout_opt,
        objective=args.objective,
        cycle_bound=args.cycle_bound,
        energy_bound=args.energy_bound,
    )


def _print_served_result(job: dict, result: ExplorationResult) -> int:
    """Shared result rendering for ``submit --wait`` and ``jobs ID --wait``.

    Both paths must print byte-identical output for the same job so the
    crash-resume smoke test can diff them.
    """
    spec = job["spec"]
    _print_table(result, sys.stdout)
    try:
        selection = select_configuration(
            result.estimates,
            objective=spec.get("objective", "energy"),
            cycle_bound=spec.get("cycle_bound"),
            energy_bound=spec.get("energy_bound"),
        )
        print(f"\n{selection}")
    except SelectionError as exc:
        print(f"\nselection failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _await_job(client, job_id: str, timeout_s: Optional[float]) -> int:
    """Wait for a job, then print its result (or the failure)."""
    job = client.wait(job_id, timeout_s=timeout_s)
    if job["state"] == "failed":
        print(f"job {job_id} failed: {job.get('error')}", file=sys.stderr)
        return 1
    if job["state"] == "cancelled":
        print(f"job {job_id} cancelled: {job.get('error')}", file=sys.stderr)
        return 1
    if job["state"] != "done":
        print(f"timed out waiting for job {job_id} "
              f"({job['done_configs']}/{job['total_configs']} configs)",
              file=sys.stderr)
        return 1
    return _print_served_result(job, client.result(job_id))


def _tenancy_policy(args: argparse.Namespace):
    """Build the service's admission policy from the serve flags."""
    from repro.serve import ClientPolicy, TenancyPolicy

    try:
        default = ClientPolicy(
            rate=args.client_rate,
            burst=args.client_burst,
            max_inflight=args.client_inflight,
        )
    except ValueError as exc:
        raise CLIError(str(exc))
    overrides = {}
    for item in args.client_weight or []:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise CLIError(
                f"--client-weight expects NAME=WEIGHT, got {item!r}"
            )
        try:
            weight = float(value)
        except ValueError:
            raise CLIError(f"--client-weight {name}: {value!r} is not a number")
        try:
            overrides[name] = ClientPolicy(
                rate=default.rate,
                burst=default.burst,
                max_inflight=default.max_inflight,
                weight=weight,
            )
        except ValueError as exc:
            raise CLIError(f"--client-weight {name}: {exc}")
    try:
        return TenancyPolicy(default=default, overrides=overrides)
    except ValueError as exc:
        raise CLIError(str(exc))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ExplorationService, install_signal_handlers, make_server

    spool = args.spool if args.spool is not None else args.store + ".spool"
    service = ExplorationService(
        args.store,
        spool,
        queue_depth=args.queue_depth,
        sweep_jobs=args.jobs,
        trace=not args.no_trace,
        tenancy=_tenancy_policy(args),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    ).start()
    httpd = make_server(args.host, args.port, service)
    install_signal_handlers(httpd, service)
    host, port = httpd.server_address[:2]
    print(f"serving on http://{host}:{port} (store={args.store})", flush=True)
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
        service.stop(wait=False)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    try:
        client = ServeClient(args.server, client_id=args.client)
    except ValueError as exc:
        raise CLIError(str(exc))
    job = client.submit(
        _job_spec(args),
        priority=args.priority,
        deadline_s=args.deadline,
    )
    flag = " (coalesced)" if job.get("coalesced") else ""
    print(f"job {job['job_id']}{flag}", file=sys.stderr)
    if args.no_wait:
        print(job["job_id"])
        return 0
    return _await_job(client, job["job_id"], args.timeout)


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.server)
    if args.cancel:
        if args.job_id is None:
            raise CLIError("jobs --cancel requires a job id")
        try:
            job = client.cancel(args.job_id)
        except ServeError as exc:
            raise CLIError(str(exc))
        print(f"job {args.job_id} {job['state']}", file=sys.stderr)
        return 0
    if args.manifest:
        if args.job_id is None:
            raise CLIError("jobs --manifest requires a job id")
        manifest = client.job(args.job_id).get("manifest")
        if manifest is None:
            raise CLIError(f"job {args.job_id} has no manifest recorded yet")
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    if args.job_id is None:
        rows = client.jobs()
        print(f"{'job':>22s} {'state':>8s} {'progress':>10s} "
              f"{'kernel':>10s} {'coalesced':>9s}")
        for job in rows:
            progress = f"{job['done_configs']}/{job['total_configs']}"
            print(
                f"{job['job_id']:>22s} {job['state']:>8s} {progress:>10s} "
                f"{job['spec']['kernel']:>10s} {job['coalesced']:>9d}"
            )
        return 0
    if args.wait:
        return _await_job(client, args.job_id, args.timeout)
    print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``repro store verify``: audit (and optionally repair) a store."""
    from repro.serve import open_store

    if args.action != "verify":  # pragma: no cover (argparse enforces)
        raise CLIError(f"unknown store action {args.action!r}")
    store = open_store(args.store)
    try:
        report = store.verify(repair=args.repair, spool_dir=args.spool)
    finally:
        store.close()
    print(f"scanned {report['scanned']} rows: "
          f"{report['corrupt']} corrupt, "
          f"{report['missing_checksum']} missing checksums")
    for row in report["corrupt_rows"]:
        print(f"  {row['table']}/{row['key']}: {row['reason']}",
              file=sys.stderr)
    if args.repair:
        print(f"repair: {report['quarantined']} quarantined, "
              f"{report['checksums_added']} checksums added, "
              f"{report['rows_rebuilt']} estimates rebuilt from journals")
    if not report["clean"]:
        print("store verify FAILED (rerun with --repair to quarantine)",
              file=sys.stderr)
        return 1
    print("store verify OK")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient
    from repro.serve.top import run_top

    return run_top(
        ServeClient(args.server),
        interval_s=args.interval,
        iterations=args.iterations,
    )


def _cmd_plugins(args: argparse.Namespace) -> int:
    from repro.registry import get_registry

    infos = get_registry().infos(args.kind)
    if args.json:
        print(json.dumps([info.to_json() for info in infos],
                         indent=2, sort_keys=True))
        return 0
    print(f"{'kind':<8s} {'name':<24s} {'origin':<24s} {'version'}")
    for info in infos:
        print(f"{info.kind:<8s} {info.name:<24s} {info.origin:<24s} "
              f"{info.version}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The :mod:`argparse` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="memexplore",
        description=(
            "Memory exploration for low-power embedded systems "
            "(reproduction of Shiue & Chakrabarti, DAC 1999)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list bundled kernels")
    _add_obs_args(listing)
    listing.set_defaults(func=_cmd_list)

    explore = sub.add_parser("explore", help="run Algorithm MemExplore on a kernel")
    explore.add_argument("kernel")
    explore.add_argument("--max-size", type=int, default=512)
    explore.add_argument("--min-size", type=int, default=16)
    explore.add_argument("--ways", type=int, nargs="+", default=[1])
    explore.add_argument("--tilings", type=int, nargs="+", default=None)
    explore.add_argument("--objective", choices=["energy", "cycles"], default="energy")
    explore.add_argument("--cycle-bound", type=float, default=None)
    explore.add_argument("--energy-bound", type=float, default=None)
    _add_energy_args(explore)
    _add_engine_args(explore)
    _add_resilience_args(explore)
    _add_manifest_args(explore)
    _add_obs_args(explore)
    explore.set_defaults(func=_cmd_explore)

    mincache = sub.add_parser("mincache", help="Section 3 minimum cache size report")
    mincache.add_argument("kernel")
    mincache.add_argument("--line-sizes", type=int, nargs="+", default=[2, 4, 8, 16])
    _add_obs_args(mincache)
    mincache.set_defaults(func=_cmd_mincache)

    layout = sub.add_parser("layout", help="Section 4.1 off-chip assignment report")
    layout.add_argument("kernel")
    layout.add_argument("--cache-size", type=int, default=64)
    layout.add_argument("--line-size", type=int, default=8)
    _add_obs_args(layout)
    layout.set_defaults(func=_cmd_layout)

    mpeg = sub.add_parser("mpeg", help="Section 5 MPEG decoder case study")
    mpeg.add_argument("--macroblocks", type=int, default=8)
    mpeg.add_argument("--max-size", type=int, default=512)
    mpeg.add_argument("--min-size", type=int, default=16)
    _add_energy_args(mpeg)
    _add_engine_args(mpeg)
    _add_resilience_args(mpeg)
    _add_manifest_args(mpeg)
    _add_obs_args(mpeg)
    mpeg.set_defaults(func=_cmd_mpeg)

    spm = sub.add_parser("spm", help="cache vs scratchpad per on-chip budget")
    spm.add_argument("kernel")
    spm.add_argument(
        "--budgets", type=int, nargs="+",
        default=[16, 32, 64, 128, 256, 512, 1024],
    )
    _add_energy_args(spm)
    _add_engine_args(spm)
    _add_resilience_args(spm)
    _add_manifest_args(spm)
    _add_obs_args(spm)
    spm.set_defaults(func=_cmd_spm)

    trace = sub.add_parser(
        "trace", help="export a din trace or report locality statistics"
    )
    trace.add_argument("kernel")
    trace.add_argument("--din", default=None, help="write Dinero din file here")
    trace.add_argument("--cache-size", type=int, default=64)
    trace.add_argument("--line-size", type=int, default=8)
    trace.add_argument("--tile", type=int, default=1)
    trace.add_argument("--optimized", action="store_true",
                       help="use the Section 4.1 layout")
    _add_obs_args(trace)
    trace.set_defaults(func=_cmd_trace)

    search = sub.add_parser("search", help="greedy pruned exploration")
    search.add_argument("kernel")
    search.add_argument("--objective", choices=["energy", "cycles"],
                        default="energy")
    search.add_argument("--max-size", type=int, default=1024)
    search.add_argument("--min-size", type=int, default=16)
    _add_energy_args(search)
    _add_engine_args(search)
    _add_manifest_args(search)
    _add_obs_args(search)
    search.set_defaults(func=_cmd_search)

    pareto = sub.add_parser(
        "pareto",
        help="multi-objective Pareto search (local, or POST /pareto with "
             "--server)",
    )
    pareto.add_argument("kernel")
    pareto.add_argument(
        "--searcher", default="nsga2",
        help="search strategy plugin (see 'plugins --kind searcher'; "
             "default: nsga2)",
    )
    pareto.add_argument("--generations", type=int, default=10)
    pareto.add_argument("--population", type=int, default=16)
    pareto.add_argument("--seed", type=int, default=0,
                        help="search RNG seed (fixed seed => identical "
                             "fronts, any --jobs)")
    pareto.add_argument(
        "--objectives", nargs="+", default=["cycles", "energy"],
        choices=["cycles", "energy", "area"],
        help="objective axes to minimise (default: cycles energy)",
    )
    pareto.add_argument("--archive-capacity", type=int, default=128,
                        help="bound on retained front points")
    pareto.add_argument(
        "--no-seed-population", action="store_true",
        help="skip analytic seeding of the initial population",
    )
    pareto.add_argument("--max-size", type=int, default=512)
    pareto.add_argument("--min-size", type=int, default=16)
    pareto.add_argument("--ways", type=int, nargs="+", default=[1])
    pareto.add_argument("--tilings", type=int, nargs="+", default=None)
    pareto.add_argument(
        "--checkpoint", metavar="FILE.jsonl", default=None,
        help="journal completed generations to this append-only file "
             "(local runs)",
    )
    pareto.add_argument(
        "--resume", action="store_true",
        help="replay generations already journaled in --checkpoint",
    )
    pareto.add_argument(
        "--server", default=None, metavar="URL",
        help="submit to a running service (POST /pareto) and stream the "
             "front per generation instead of searching locally",
    )
    pareto.add_argument("--priority", type=int, default=10,
                        help="queue priority on the service (lower runs "
                             "sooner)")
    pareto.add_argument("--no-wait", action="store_true",
                        help="with --server: print the job id and return")
    pareto.add_argument("--timeout", type=float, default=None,
                        help="with --server: give up waiting after this "
                             "many seconds")
    pareto.add_argument("--client", default=None, metavar="NAME",
                        help="tenant identity sent as X-Repro-Client")
    pareto.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="with --server: wall-clock bound; an expired "
                             "search cancels but keeps its journal")
    _add_energy_args(pareto)
    _add_engine_args(pareto)
    _add_manifest_args(pareto)
    _add_obs_args(pareto)
    pareto.set_defaults(func=_cmd_pareto, chunk_timeout=None, max_retries=None)

    sheet = sub.add_parser("datasheet", help="full report for one configuration")
    sheet.add_argument("kernel")
    sheet.add_argument("--cache-size", type=int, default=64)
    sheet.add_argument("--line-size", type=int, default=8)
    sheet.add_argument("--ways", type=int, default=1)
    sheet.add_argument("--tiling", type=int, default=1)
    _add_energy_args(sheet)
    _add_obs_args(sheet)
    sheet.set_defaults(func=_cmd_datasheet)

    codegen = sub.add_parser(
        "codegen", help="emit the transformed C source for a configuration"
    )
    codegen.add_argument("kernel")
    codegen.add_argument("--cache-size", type=int, default=64)
    codegen.add_argument("--line-size", type=int, default=8)
    codegen.add_argument("--tiling", type=int, default=1)
    codegen.add_argument("--no-layout-opt", action="store_true")
    _add_obs_args(codegen)
    codegen.set_defaults(func=_cmd_codegen)

    sens = sub.add_parser(
        "sensitivity", help="tornado analysis of the model constants"
    )
    sens.add_argument("kernel")
    sens.add_argument("--max-size", type=int, default=512)
    sens.add_argument("--min-size", type=int, default=16)
    _add_obs_args(sens)
    sens.set_defaults(func=_cmd_sensitivity)

    stats = sub.add_parser(
        "stats",
        help="profiled sweep: per-stage timing and cache-hit table",
    )
    stats.add_argument("kernel", nargs="?", default=None)
    stats.add_argument(
        "--from", dest="from_file", metavar="FILE.json", default=None,
        help="render a previously written repro.obs/1 report instead of "
             "running a sweep",
    )
    stats.add_argument("--max-size", type=int, default=512)
    stats.add_argument("--min-size", type=int, default=16)
    stats.add_argument("--ways", type=int, nargs="+", default=[1])
    stats.add_argument("--tilings", type=int, nargs="+", default=None)
    _add_energy_args(stats)
    _add_engine_args(stats)
    _add_resilience_args(stats)
    _add_manifest_args(stats)
    _add_obs_args(stats)
    stats.set_defaults(func=_cmd_stats)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP exploration service (job queue + result store)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--store", default="repro-results.db",
                       help="persistent sqlite result store (repro.store/1)")
    serve.add_argument("--spool", default=None, metavar="DIR",
                       help="checkpoint journal directory "
                            "(default: <store>.spool)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admission-control bound on queued jobs")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes per sweep")
    serve.add_argument("--no-trace", action="store_true",
                       help="do not mint trace ids for bare submissions "
                            "(clients can still send their own)")
    serve.add_argument("--client-rate", type=float, default=None,
                       metavar="JOBS_PER_S",
                       help="per-client steady submission rate "
                            "(default: unlimited)")
    serve.add_argument("--client-burst", type=int, default=10,
                       help="per-client burst capacity (token bucket depth)")
    serve.add_argument("--client-inflight", type=int, default=None,
                       metavar="N",
                       help="per-client cap on queued+running jobs "
                            "(default: unlimited)")
    serve.add_argument("--client-weight", action="append", default=[],
                       metavar="NAME=WEIGHT",
                       help="fair-share weight for one client (repeatable; "
                            "default weight is 1.0)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       metavar="N",
                       help="consecutive chunk failures before an "
                            "evaluator's circuit breaker opens")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds an open breaker waits before its "
                            "half-open probe")
    _add_obs_args(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running exploration service"
    )
    submit.add_argument("kernel")
    submit.add_argument("--server", default="http://127.0.0.1:8000")
    submit.add_argument("--priority", type=int, default=10,
                        help="queue priority (lower runs sooner)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return immediately")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after this many seconds")
    submit.add_argument("--client", default=None, metavar="NAME",
                        help="tenant identity sent as X-Repro-Client "
                             "(default: anonymous)")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock bound; an expired job cancels "
                             "but keeps its checkpoint for resume")
    submit.add_argument("--max-size", type=int, default=512)
    submit.add_argument("--min-size", type=int, default=16)
    submit.add_argument("--ways", type=int, nargs="+", default=[1])
    submit.add_argument("--tilings", type=int, nargs="+", default=None)
    submit.add_argument("--objective", choices=["energy", "cycles"],
                        default="energy")
    submit.add_argument("--cycle-bound", type=float, default=None)
    submit.add_argument("--energy-bound", type=float, default=None)
    submit.add_argument(
        "--backend", default="auto", choices=available_backends()
    )
    _add_energy_args(submit)
    _add_obs_args(submit)
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list service jobs, or show/await one job"
    )
    jobs.add_argument("job_id", nargs="?", default=None)
    jobs.add_argument("--server", default="http://127.0.0.1:8000")
    jobs.add_argument("--wait", action="store_true",
                      help="block until the job finishes, then print its result")
    jobs.add_argument("--timeout", type=float, default=None,
                      help="give up waiting after this many seconds")
    jobs.add_argument("--manifest", action="store_true",
                      help="print the job's repro.manifest/1 document")
    jobs.add_argument("--cancel", action="store_true",
                      help="cancel the job (dequeues queued jobs, stops "
                           "running sweeps at the next chunk)")
    _add_obs_args(jobs)
    jobs.set_defaults(func=_cmd_jobs)

    store = sub.add_parser(
        "store", help="offline result-store maintenance (verify/repair)"
    )
    store.add_argument("action", choices=["verify"],
                       help="verify: audit per-row sha256 checksums")
    store.add_argument("--store", default="repro-results.db",
                       help="persistent sqlite result store to scan")
    store.add_argument("--spool", default=None, metavar="DIR",
                       help="checkpoint journal directory for --repair "
                            "estimate rebuilds (default: none)")
    store.add_argument("--repair", action="store_true",
                       help="quarantine corrupt rows, backfill legacy "
                            "checksums, rebuild from journals")
    _add_obs_args(store)
    store.set_defaults(func=_cmd_store)

    top = sub.add_parser(
        "top", help="live dashboard for a running exploration service"
    )
    top.add_argument("--server", default="http://127.0.0.1:8000")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="seconds between refreshes (default: 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="stop after N refreshes (default: until Ctrl-C)")
    _add_obs_args(top)
    top.set_defaults(func=_cmd_top)

    from repro.registry import KINDS

    plugins = sub.add_parser(
        "plugins",
        help="list registered components (built-ins and installed plugins)",
    )
    plugins.add_argument(
        "--kind", choices=KINDS, default=None,
        help="show one component kind only",
    )
    plugins.add_argument(
        "--json", action="store_true",
        help="emit the table as JSON instead of text",
    )
    _add_obs_args(plugins)
    plugins.set_defaults(func=_cmd_plugins)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``memexplore`` and ``python -m repro``.

    Besides dispatching the subcommand, this is where the observability
    flags land: logging is configured first, spans are enabled for the
    duration of the command under ``--profile`` (table printed afterwards),
    and ``--metrics-out`` serialises the ``repro.obs/1`` report once the
    command finishes.  The collector and registry are reset up front so a
    reporting invocation describes this command only.
    """
    args = build_parser().parse_args(argv)
    obs.configure_logging(args.log_level, json_format=args.log_json)
    reporting = args.profile or args.metrics_out is not None
    if reporting:
        obs.reset()
    if args.profile:
        obs.enable_profiling()
    try:
        code = args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except KeyboardInterrupt:
        # Conventional 128 + SIGINT, without a traceback splattered on
        # the terminal.
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if args.profile:
            obs.disable_profiling()
    if reporting:
        report = obs.build_report(cache=get_eval_cache().snapshot())
        if args.profile and args.command != "stats":
            print()
            print(obs.render_stage_table(report))
        if args.metrics_out is not None:
            obs.write_report(args.metrics_out, report)
            print(f"wrote {obs.SCHEMA} report to {args.metrics_out}")
    return code


if __name__ == "__main__":
    sys.exit(main())
