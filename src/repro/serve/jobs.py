"""Job model for the exploration service: specs, queue, coalescing, runner.

A *job* is one sweep request -- ``(workload, config grid, bounds,
backend)`` -- expressed as a :class:`JobSpec` whose canonical JSON hashes
to a ``spec_hash``.  The hash is the coalescing key: while a job with the
same hash is queued or running, further submissions attach to it instead
of enqueueing duplicates, so concurrent clients sweeping the same grid
pay for it once.  Overlapping-but-different grids deduplicate one level
down, per configuration, through the
:class:`~repro.serve.store.ResultStore` L2 tier: a configuration any
previous job evaluated is served from the store without touching the
engine.

:class:`JobManager` owns the bounded priority queue (admission control:
a full queue rejects with a retry hint, which the HTTP layer turns into
``429 Retry-After``) and the job registry; every state transition is
persisted to the store's ``jobs`` table, so a ``kill -9`` of the server
loses nothing -- :meth:`JobManager.recover` re-enqueues interrupted jobs
on restart and :class:`JobRunner` resumes them from their checkpoint
journals with bit-identical results.

Counters fed into the :mod:`repro.obs` registry: ``serve.jobs_submitted``,
``serve.jobs_coalesced``, ``serve.jobs_rejected``, ``serve.jobs_completed``,
``serve.jobs_failed`` and ``serve.jobs_recovered``; latency histograms
``serve.queue.wait_seconds`` (submit to claim) and ``serve.job_seconds``
(execution wall time).  A job submitted with a ``trace_id`` additionally
produces a ``repro.trace/1`` timeline (see :mod:`repro.obs.trace`)
persisted in the store's ``traces`` table.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import logging
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import CacheConfig, design_space
from repro.energy import get_energy_model, get_sram
from repro.engine.evaluator import Evaluator, order_configs
from repro.engine.parallel import ParallelSweep
from repro.engine.resilience import (
    ResilienceOptions,
    estimate_to_json,
    sweep_fingerprint,
)
from repro.engine.result import ExplorationResult
from repro.engine.workload import KernelWorkload
from repro.kernels import get_kernel
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_metrics
from repro.obs.spans import span
from repro.registry import build_manifest, get_registry
from repro.serve.store import ResultStore, StoreBackedEvaluator, evaluator_fingerprint

__all__ = [
    "Job",
    "JobManager",
    "JobRunner",
    "JobSpec",
    "QueueFullError",
    "ServiceDrainingError",
    "JOB_STATES",
]

logger = logging.getLogger(__name__)

#: Lifecycle states of a job (terminal: ``done``, ``failed``).
JOB_STATES = ("queued", "running", "done", "failed")

#: Default priority; lower numbers run sooner.
DEFAULT_PRIORITY = 10


class QueueFullError(RuntimeError):
    """Admission control rejected a submission (queue at capacity)."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"job queue is full; retry after {retry_after_s:.0f}s"
        )
        self.retry_after_s = retry_after_s


class ServiceDrainingError(RuntimeError):
    """The service is draining (SIGTERM) and accepts no new jobs."""


@dataclass(frozen=True)
class JobSpec:
    """One sweep request: workload, grid, bounds and backend.

    The canonical JSON of the spec (sorted keys, normalised tuples) hashes
    to :attr:`spec_hash`, the fleet-wide coalescing key.  ``objective`` /
    ``cycle_bound`` / ``energy_bound`` ride along so the service can
    report the bounded selection with the result.
    """

    kernel: str
    backend: str = "fastsim"
    max_size: int = 512
    min_size: int = 16
    ways: Tuple[int, ...] = (1,)
    tilings: Optional[Tuple[int, ...]] = None
    sram: str = "CY7C-2Mbit"
    optimize_layout: bool = True
    objective: str = "energy"
    cycle_bound: Optional[float] = None
    energy_bound: Optional[float] = None

    def __post_init__(self) -> None:
        registry = get_registry()
        if not registry.has("kernel", self.kernel):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if not registry.has("backend", self.backend):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not registry.has("sram", self.sram):
            raise ValueError(f"unknown SRAM part {self.sram!r}")
        if self.objective not in ("energy", "cycles"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.min_size <= 0 or self.max_size < self.min_size:
            raise ValueError("size bounds must satisfy 0 < min <= max")
        object.__setattr__(self, "ways", tuple(int(w) for w in self.ways))
        if self.tilings is not None:
            object.__setattr__(
                self, "tilings", tuple(int(b) for b in self.tilings)
            )

    def to_json(self) -> Dict[str, Any]:
        """JSON-compatible dict accepted back by :meth:`from_json`."""
        return {
            "kernel": self.kernel,
            "backend": self.backend,
            "max_size": self.max_size,
            "min_size": self.min_size,
            "ways": list(self.ways),
            "tilings": None if self.tilings is None else list(self.tilings),
            "sram": self.sram,
            "optimize_layout": self.optimize_layout,
            "objective": self.objective,
            "cycle_bound": self.cycle_bound,
            "energy_bound": self.energy_bound,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobSpec":
        """Validate and build a spec from a client-supplied document."""
        if not isinstance(doc, dict):
            raise ValueError("job spec must be a JSON object")
        known = {
            "kernel", "backend", "max_size", "min_size", "ways", "tilings",
            "sram", "optimize_layout", "objective", "cycle_bound",
            "energy_bound",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        if "kernel" not in doc:
            raise ValueError("job spec needs a kernel")
        kwargs: Dict[str, Any] = dict(doc)
        if "ways" in kwargs:
            kwargs["ways"] = tuple(kwargs["ways"])
        if kwargs.get("tilings") is not None:
            kwargs["tilings"] = tuple(kwargs["tilings"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"malformed job spec: {exc}") from exc

    def canonical(self) -> str:
        """Canonical JSON text (the input to :attr:`spec_hash`)."""
        return json.dumps(self.to_json(), sort_keys=True)

    @property
    def spec_hash(self) -> str:
        """SHA-256 of the canonical spec: the coalescing key."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def configs(self) -> List[CacheConfig]:
        """The grid in canonical sweep order."""
        return order_configs(
            design_space(
                max_size=self.max_size,
                min_size=self.min_size,
                ways=self.ways,
                tilings=self.tilings,
            )
        )

    def build_evaluator(
        self, store: Optional[ResultStore] = None
    ) -> Any:
        """The engine evaluator for this spec (store-backed when given)."""
        evaluator = Evaluator(
            KernelWorkload(
                get_kernel(self.kernel), optimize_layout=self.optimize_layout
            ),
            backend=self.backend,
            energy_model=get_energy_model("hwo", sram=get_sram(self.sram)),
        )
        if store is None:
            return evaluator
        return StoreBackedEvaluator(evaluator, store)

    def eval_id(self) -> str:
        """The store fingerprint of this spec's evaluator."""
        return evaluator_fingerprint(self.build_evaluator())


@dataclass
class Job:
    """One tracked sweep: spec + lifecycle + progress + result."""

    spec: JobSpec
    priority: int = DEFAULT_PRIORITY
    job_id: str = ""
    state: str = "queued"
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    done_configs: int = 0
    total_configs: int = 0
    coalesced: int = 0
    resumed: bool = False
    #: Trace identity (repro.obs.trace); ``None`` runs the job untraced.
    trace_id: Optional[str] = None
    #: Bumped on every visible change; progress streams key off it.
    version: int = 0
    #: In-memory result (after restart, results come from the store).
    result: Optional[ExplorationResult] = None
    #: Every snapshot this job has published, in order.  ``/events``
    #: consumers replay it from index 0, so any number of concurrent
    #: streams see the identical, complete sequence (volatile: not
    #: persisted, rebuilt with one snapshot on recovery).
    history: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = f"{self.spec.spec_hash[:12]}-{uuid.uuid4().hex[:8]}"
        if not self.total_configs:
            self.total_configs = len(self.spec.configs())

    @property
    def terminal(self) -> bool:
        """Whether the job reached ``done`` or ``failed``."""
        return self.state in ("done", "failed")

    def to_json(self) -> Dict[str, Any]:
        """The job record served by ``GET /jobs/<id>`` (and persisted)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec.spec_hash,
            "priority": self.priority,
            "state": self.state,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "done_configs": self.done_configs,
            "total_configs": self.total_configs,
            "coalesced": self.coalesced,
            "resumed": self.resumed,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Job":
        """Rebuild a persisted job record (dropping volatile fields)."""
        return cls(
            spec=JobSpec.from_json(doc["spec"]),
            priority=int(doc.get("priority", DEFAULT_PRIORITY)),
            job_id=doc["job_id"],
            state=doc.get("state", "queued"),
            submitted_s=float(doc.get("submitted_s", 0.0)),
            started_s=doc.get("started_s"),
            finished_s=doc.get("finished_s"),
            error=doc.get("error"),
            done_configs=int(doc.get("done_configs", 0)),
            total_configs=int(doc.get("total_configs", 0)),
            coalesced=int(doc.get("coalesced", 0)),
            resumed=bool(doc.get("resumed", False)),
            trace_id=doc.get("trace_id"),
        )


class JobManager:
    """Bounded priority queue + registry + persistence for jobs.

    All mutation happens under one condition variable; every visible
    change bumps the job's ``version`` and wakes waiters, which is what
    the long-poll and progress-streaming endpoints block on.
    """

    def __init__(
        self,
        store: ResultStore,
        max_depth: int = 16,
        retry_after_s: float = 2.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.store = store
        self.max_depth = max_depth
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self._jobs: "Dict[str, Job]" = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = itertools.count()
        #: spec_hash -> job_id for every queued or running job.
        self._active: Dict[str, str] = {}
        self._draining = False
        self._stopped = False

    # ------------------------------------------------------------------
    # submission / admission control / coalescing

    def submit(
        self,
        spec: JobSpec,
        priority: int = DEFAULT_PRIORITY,
        trace_id: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Queue a job (or coalesce onto an active one).

        Returns ``(job, coalesced)``.  Raises :class:`QueueFullError`
        when the queue is at capacity and :class:`ServiceDrainingError`
        during drain.  ``trace_id`` opts the job into a ``repro.trace/1``
        timeline; a coalesced submission joins the original job's trace.
        """
        metrics = get_metrics()
        with self._cond:
            if self._draining:
                raise ServiceDrainingError(
                    "service is draining; not accepting new jobs"
                )
            active_id = self._active.get(spec.spec_hash)
            if active_id is not None:
                job = self._jobs[active_id]
                job.coalesced += 1
                self._touch(job)
                metrics.counter("serve.jobs_coalesced").inc()
                self._persist(job)
                self._cond.notify_all()
                return job, True
            if len(self._heap) >= self.max_depth:
                metrics.counter("serve.jobs_rejected").inc()
                raise QueueFullError(self.retry_after_s)
            job = Job(spec=spec, priority=priority, trace_id=trace_id)
            self._register(job)
            self._touch(job)
            metrics.counter("serve.jobs_submitted").inc()
            metrics.gauge("serve.queue_depth").set(len(self._heap))
            self._persist(job)
            self._cond.notify_all()
            return job, False

    def _touch(self, job: Job) -> None:
        """Publish a visible change: bump the version, append to history."""
        job.version += 1
        job.history.append(job.to_json())

    def _register(self, job: Job) -> None:
        """Track a queued job (caller holds the lock)."""
        self._jobs[job.job_id] = job
        self._active[job.spec.spec_hash] = job.job_id
        heapq.heappush(self._heap, (job.priority, next(self._seq), job.job_id))

    def recover(self) -> int:
        """Re-enqueue persisted jobs interrupted by a crash or restart.

        ``queued`` and ``running`` records go back on the queue (their
        checkpoint journals make the resume cheap); terminal records are
        registered for ``GET /jobs`` history.  Returns the number of jobs
        re-enqueued.
        """
        recovered = 0
        docs = sorted(self.store.load_jobs(), key=lambda d: d.get("submitted_s", 0.0))
        with self._cond:
            for doc in docs:
                try:
                    job = Job.from_json(doc)
                except (KeyError, ValueError) as exc:
                    logger.warning(
                        "ignoring unreadable persisted job record: %s", exc
                    )
                    continue
                if job.job_id in self._jobs:
                    continue
                if job.terminal:
                    self._jobs[job.job_id] = job
                    job.history.append(job.to_json())
                    continue
                job.state = "queued"
                job.resumed = True
                self._register(job)
                self._touch(job)
                self._persist(job)
                recovered += 1
            if recovered:
                get_metrics().counter("serve.jobs_recovered").inc(recovered)
                self._cond.notify_all()
        if recovered:
            logger.info("recovered %d interrupted job(s)", recovered)
        return recovered

    # ------------------------------------------------------------------
    # runner side

    def next_job(self, timeout_s: float = 0.5) -> Optional[Job]:
        """Claim the highest-priority queued job (blocks up to ``timeout_s``)."""
        with self._cond:
            if not self._heap:
                self._cond.wait(timeout_s)
            if not self._heap:
                return None
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            job.state = "running"
            job.started_s = time.time()
            self._touch(job)
            metrics = get_metrics()
            metrics.histogram("serve.queue.wait_seconds").observe(
                max(0.0, job.started_s - job.submitted_s)
            )
            metrics.gauge("serve.queue_depth").set(len(self._heap))
            self._persist(job)
            self._cond.notify_all()
            return job

    def progress(self, job: Job, done: int, total: int) -> None:
        """Record sweep progress (journaled chunks) for streaming clients."""
        with self._cond:
            job.done_configs = done
            job.total_configs = total
            self._touch(job)
            self._cond.notify_all()

    def finish(self, job: Job, result: ExplorationResult) -> None:
        """Mark a job done and release its coalescing slot."""
        with self._cond:
            job.result = result
            job.state = "done"
            job.done_configs = len(result)
            job.total_configs = len(result)
            job.finished_s = time.time()
            self._touch(job)
            self._release(job)
            get_metrics().counter("serve.jobs_completed").inc()
            self._persist(job)
            self._cond.notify_all()

    def fail(self, job: Job, error: str) -> None:
        """Mark a job failed and release its coalescing slot."""
        with self._cond:
            job.state = "failed"
            job.error = error
            job.finished_s = time.time()
            self._touch(job)
            self._release(job)
            get_metrics().counter("serve.jobs_failed").inc()
            self._persist(job)
            self._cond.notify_all()

    def _release(self, job: Job) -> None:
        if self._active.get(job.spec.spec_hash) == job.job_id:
            del self._active[job.spec.spec_hash]

    def _persist(self, job: Job) -> None:
        try:
            self.store.save_job(job.job_id, job.to_json())
        except sqlite3.Error as exc:  # pragma: no cover - disk trouble
            logger.warning("could not persist job %s: %s", job.job_id, exc)

    # ------------------------------------------------------------------
    # reads / waiting

    def get(self, job_id: str) -> Optional[Job]:
        """The job called ``job_id``, if known."""
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        """Every known job, most recently submitted first."""
        with self._cond:
            return sorted(
                self._jobs.values(),
                key=lambda job: job.submitted_s,
                reverse=True,
            )

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Optional[Job]:
        """Block until ``job_id`` is terminal (or the timeout passes)."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._cond.wait(
                    0.5 if remaining is None else min(0.5, remaining)
                )

    def events_since(
        self, job_id: str, cursor: int, timeout_s: float = 10.0
    ) -> Tuple[Optional[Job], List[Dict[str, Any]]]:
        """The job's published snapshots past ``cursor`` (blocking).

        Blocks until new history exists, the job is terminal, or the
        timeout passes; returns ``(job, snapshots)``.  Because every
        consumer replays the same append-only history, concurrent
        ``/events`` streams of one job see identical, complete sequences
        regardless of when they attach.
        """
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return None, []
                if len(job.history) > cursor:
                    return job, list(job.history[cursor:])
                if job.terminal:
                    return job, []
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job, []
                self._cond.wait(min(0.5, remaining))

    def wait_change(
        self, job_id: str, seen_version: int, timeout_s: float = 10.0
    ) -> Optional[Job]:
        """Block until the job's version moves past ``seen_version``."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.version != seen_version or job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
                self._cond.wait(min(0.5, remaining))

    # ------------------------------------------------------------------
    # drain / shutdown

    def begin_drain(self) -> None:
        """Stop admitting jobs; queued and running work still completes."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        """Whether the service is refusing new submissions."""
        return self._draining

    def stop(self) -> None:
        """Drain and tell the runner to exit once the queue is empty."""
        with self._cond:
            self._draining = True
            self._stopped = True
            self._cond.notify_all()

    @property
    def stopped(self) -> bool:
        """Whether the runner should exit when idle."""
        return self._stopped

    def idle(self) -> bool:
        """Whether nothing is queued or running."""
        with self._cond:
            return not self._heap and not self._active


class JobRunner(threading.Thread):
    """The worker loop: claim, sweep (with checkpoints), record.

    One runner executes jobs strictly in priority order; parallelism
    *within* a job comes from ``sweep_jobs``
    (:class:`~repro.engine.parallel.ParallelSweep` fan-out).  Every job
    journals to ``<spool>/<job_id>.jsonl`` and always runs with
    ``resume=True``, so a job interrupted by ``kill -9`` picks up exactly
    where its journal stops and the final result is bit-identical to an
    uninterrupted run.
    """

    def __init__(
        self,
        manager: JobManager,
        spool_dir: str,
        sweep_jobs: int = 1,
    ) -> None:
        super().__init__(name="repro-serve-runner", daemon=True)
        self.manager = manager
        self.spool_dir = str(spool_dir)
        self.sweep_jobs = max(1, int(sweep_jobs))
        os.makedirs(self.spool_dir, exist_ok=True)

    def checkpoint_path(self, job: Job) -> str:
        """Where one job journals its completed chunks."""
        return os.path.join(self.spool_dir, f"{job.job_id}.jsonl")

    def run(self) -> None:  # pragma: no cover - exercised via the service
        while True:
            job = self.manager.next_job(timeout_s=0.2)
            if job is None:
                if self.manager.stopped:
                    return
                continue
            self.execute(job)

    def execute(self, job: Job) -> None:
        """Run one job to a terminal state (never raises).

        A job carrying a ``trace_id`` runs under an active
        :class:`~repro.obs.trace.TraceRecorder`: a synthetic
        ``queue.wait`` event covers submit to start, a root ``job`` span
        wraps the sweep (whose workers ship their chunk events back
        through the payload protocol), and the merged timeline is
        persisted to the store's ``traces`` table -- on failure too.
        The timeline lands *before* the job turns terminal, so a client
        woken by the done state never races the trace write.
        """
        started = time.perf_counter()
        tracer = obs_trace.tracing(job.trace_id) if job.trace_id else None
        recorder = tracer.__enter__() if tracer is not None else None
        if recorder is not None and job.started_s is not None:
            recorder.add_event(
                ("job", "queue.wait"),
                job.submitted_s,
                max(0.0, job.started_s - job.submitted_s),
                {"priority": job.priority},
            )
        result = None
        error = None
        try:
            with span("job", job_id=job.job_id, kernel=job.spec.kernel):
                result = self._sweep(job)
        except Exception as exc:
            logger.warning("job %s failed: %s", job.job_id, exc)
            error = f"{type(exc).__name__}: {exc}"
        finally:
            if tracer is not None:
                tracer.__exit__(None, None, None)
                self._record_trace(job, recorder)
        if error is not None:
            self.manager.fail(job, error)
            return
        self.manager.finish(job, result)
        get_metrics().histogram("serve.job_seconds").observe(
            time.perf_counter() - started
        )
        try:
            os.remove(self.checkpoint_path(job))
        except OSError:
            pass

    def _record_trace(self, job: Job, recorder: Any) -> None:
        """Persist the job's merged timeline (best-effort, like manifests)."""
        try:
            document = obs_trace.build_document(recorder, job_id=job.job_id)
            self.manager.store.save_trace(job.job_id, document)
        except Exception as exc:  # pragma: no cover - timeline best-effort
            logger.warning(
                "could not record trace for job %s: %s", job.job_id, exc
            )

    def _sweep(self, job: Job) -> ExplorationResult:
        spec = job.spec
        evaluator = spec.build_evaluator(self.manager.store)
        configs = spec.configs()
        self.manager.progress(job, 0, len(configs))
        resilience = ResilienceOptions(
            checkpoint=self.checkpoint_path(job), resume=True
        )
        sweep = ParallelSweep(
            jobs=self.sweep_jobs,
            resilience=resilience,
            on_progress=lambda done, total: self.manager.progress(
                job, done, total
            ),
        )
        with span(
            "sweep",
            configs=len(configs),
            jobs=self.sweep_jobs,
            backend=spec.backend,
        ):
            estimates = sweep.run(evaluator, configs)
        # Rows resumed from the checkpoint journal never pass through the
        # evaluator; backfill them so the store holds the complete sweep
        # (INSERT OR IGNORE makes the overlap free).
        with span("store.write", rows=len(configs)):
            self.manager.store.put_many(
                evaluator.eval_id, zip(configs, estimates)
            )
        self._record_manifest(job, evaluator, configs, resilience)
        return ExplorationResult(estimates)

    def _record_manifest(
        self,
        job: Job,
        evaluator: Any,
        configs: List[CacheConfig],
        resilience: ResilienceOptions,
    ) -> None:
        """Persist the job's ``repro.manifest/1`` provenance document.

        The manifest lives in its own store table, keyed by job id --
        provenance *about* the result rows, never part of their keys.  A
        manifest failure must not fail the sweep it describes.
        """
        spec = job.spec
        try:
            manifest = build_manifest(
                [
                    ("kernel", spec.kernel),
                    ("backend", spec.backend),
                    ("energy", "hwo"),
                    ("sram", spec.sram),
                    ("store", "sqlite"),
                ],
                spec_hash=spec.spec_hash,
                eval_id=evaluator.eval_id,
                sweep_fingerprint=sweep_fingerprint(evaluator, configs),
                seeds={"retry_backoff": resilience.retry.seed},
            )
            self.manager.store.save_manifest(job.job_id, manifest)
        except Exception as exc:  # pragma: no cover - provenance best-effort
            logger.warning(
                "could not record manifest for job %s: %s", job.job_id, exc
            )


def result_to_json(result: ExplorationResult) -> List[Dict[str, Any]]:
    """Serialise a result exactly (the wire format of ``/jobs/<id>/result``)."""
    return [estimate_to_json(estimate) for estimate in result]
