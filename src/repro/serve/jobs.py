"""Job model for the exploration service: specs, queue, coalescing, runner.

A *job* is one sweep request -- ``(workload, config grid, bounds,
backend)`` -- expressed as a :class:`JobSpec` whose canonical JSON hashes
to a ``spec_hash``.  A spec carrying a ``search`` section
(:class:`~repro.moo.driver.SearchSettings`) is a *search job* instead:
the runner drives :func:`~repro.moo.driver.run_search` over the spec's
grid, publishes one ``repro.front/1`` event per completed generation
into the job's event history, journals generations to a distinct
``<spec_hash>.moo.jsonl`` spool file, and persists the final (or, on
cancellation, partial) front in the run manifest.  The hash is the coalescing key: while a job with the
same hash is queued or running, further submissions attach to it instead
of enqueueing duplicates, so concurrent clients sweeping the same grid
pay for it once.  Overlapping-but-different grids deduplicate one level
down, per configuration, through the
:class:`~repro.serve.store.ResultStore` L2 tier: a configuration any
previous job evaluated is served from the store without touching the
engine.

:class:`JobManager` owns the bounded multi-tenant queue (admission
control: per-client token buckets and in-flight quotas from
:mod:`repro.serve.tenancy`, then a global depth bound; rejections carry
a retry hint the HTTP layer turns into ``429 Retry-After``) and the job
registry; every state transition is persisted to the store's ``jobs``
table, so a ``kill -9`` of the server loses nothing --
:meth:`JobManager.recover` re-enqueues interrupted jobs on restart and
:class:`JobRunner` resumes them from their checkpoint journals with
bit-identical results.

Dequeue is weighted fair share, not strict global priority: each client
gets its own priority subqueue and a deficit-round-robin pointer walks
the clients, crediting each visit with the client's configured weight,
so one tenant's grid storm cannot starve the others.  Priorities still
order jobs *within* a client.

Jobs can end in a third terminal state, ``cancelled``: a client DELETE,
a ``deadline_s`` expiry, or drain-time policy sets the job's cancel
event and the sweep stops cooperatively at the next chunk boundary --
the checkpoint journal survives, so resubmitting the same spec resumes
rather than restarts.  Evaluator backends are additionally guarded by a
per-``eval_id`` circuit breaker: consecutive chunk failures open it and
later jobs against the same evaluator fail fast with a typed error
until a cooldown probe succeeds.

Counters fed into the :mod:`repro.obs` registry: ``serve.jobs_submitted``,
``serve.jobs_coalesced``, ``serve.jobs_rejected``, ``serve.jobs_completed``,
``serve.jobs_failed``, ``serve.jobs_cancelled``, ``serve.jobs_recovered``,
``serve.quota.*`` (admission rejections), ``serve.fairshare.dequeued.<client>``
and ``breaker.*``; latency histograms ``serve.queue.wait_seconds``
(submit to claim) and ``serve.job_seconds`` (execution wall time).  A job
submitted with a ``trace_id`` additionally produces a ``repro.trace/1``
timeline (see :mod:`repro.obs.trace`) persisted in the store's
``traces`` table.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import logging
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import CacheConfig, design_space
from repro.energy import get_energy_model, get_sram
from repro.engine.evaluator import Evaluator, order_configs
from repro.engine.parallel import ParallelSweep
from repro.engine.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    ResilienceOptions,
    SweepCancelledError,
    estimate_to_json,
    sweep_fingerprint,
)
from repro.engine.result import ExplorationResult
from repro.engine.workload import KernelWorkload
from repro.kernels import get_kernel
from repro.moo.driver import SearchSettings, run_search
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_metrics
from repro.obs.spans import span
from repro.registry import build_manifest, get_registry
from repro.serve.store import ResultStore, StoreBackedEvaluator, evaluator_fingerprint
from repro.serve.tenancy import (
    DEFAULT_CLIENT,
    TenancyPolicy,
    validate_client_id,
)

__all__ = [
    "Job",
    "JobManager",
    "JobRunner",
    "JobSpec",
    "QueueFullError",
    "ServiceDrainingError",
    "JOB_STATES",
]

logger = logging.getLogger(__name__)

#: Lifecycle states of a job (terminal: ``done``, ``failed``, ``cancelled``).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Default priority; lower numbers run sooner.
DEFAULT_PRIORITY = 10


class QueueFullError(RuntimeError):
    """Admission control rejected a submission (queue at capacity)."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"job queue is full; retry after {retry_after_s:.0f}s"
        )
        self.retry_after_s = retry_after_s


class ServiceDrainingError(RuntimeError):
    """The service is draining (SIGTERM) and accepts no new jobs."""


@dataclass(frozen=True)
class JobSpec:
    """One sweep request: workload, grid, bounds and backend.

    The canonical JSON of the spec (sorted keys, normalised tuples) hashes
    to :attr:`spec_hash`, the fleet-wide coalescing key.  ``objective`` /
    ``cycle_bound`` / ``energy_bound`` ride along so the service can
    report the bounded selection with the result.
    """

    kernel: str
    backend: str = "fastsim"
    max_size: int = 512
    min_size: int = 16
    ways: Tuple[int, ...] = (1,)
    tilings: Optional[Tuple[int, ...]] = None
    sram: str = "CY7C-2Mbit"
    optimize_layout: bool = True
    objective: str = "energy"
    cycle_bound: Optional[float] = None
    energy_bound: Optional[float] = None
    #: Multi-objective search section (``repro.moo``): when present the
    #: job runs a population-based Pareto search over the grid instead of
    #: sweeping it exhaustively, and its result is the final front.
    search: Optional[SearchSettings] = None

    def __post_init__(self) -> None:
        registry = get_registry()
        if not registry.has("kernel", self.kernel):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if not registry.has("backend", self.backend):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not registry.has("sram", self.sram):
            raise ValueError(f"unknown SRAM part {self.sram!r}")
        if self.objective not in ("energy", "cycles"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.min_size <= 0 or self.max_size < self.min_size:
            raise ValueError("size bounds must satisfy 0 < min <= max")
        object.__setattr__(self, "ways", tuple(int(w) for w in self.ways))
        if self.tilings is not None:
            object.__setattr__(
                self, "tilings", tuple(int(b) for b in self.tilings)
            )
        if isinstance(self.search, dict):
            object.__setattr__(
                self, "search", SearchSettings.from_json(self.search)
            )
        if self.search is not None:
            if not registry.has("searcher", self.search.searcher):
                raise ValueError(
                    f"unknown searcher {self.search.searcher!r}"
                )

    def to_json(self) -> Dict[str, Any]:
        """JSON-compatible dict accepted back by :meth:`from_json`.

        The ``search`` section is omitted entirely for plain sweep jobs:
        the canonical JSON (and therefore every historical ``spec_hash``)
        of a sweep spec is byte-identical to what it was before search
        jobs existed.
        """
        doc: Dict[str, Any] = {
            "kernel": self.kernel,
            "backend": self.backend,
            "max_size": self.max_size,
            "min_size": self.min_size,
            "ways": list(self.ways),
            "tilings": None if self.tilings is None else list(self.tilings),
            "sram": self.sram,
            "optimize_layout": self.optimize_layout,
            "objective": self.objective,
            "cycle_bound": self.cycle_bound,
            "energy_bound": self.energy_bound,
        }
        if self.search is not None:
            doc["search"] = self.search.to_json()
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobSpec":
        """Validate and build a spec from a client-supplied document."""
        if not isinstance(doc, dict):
            raise ValueError("job spec must be a JSON object")
        known = {
            "kernel", "backend", "max_size", "min_size", "ways", "tilings",
            "sram", "optimize_layout", "objective", "cycle_bound",
            "energy_bound", "search",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        if "kernel" not in doc:
            raise ValueError("job spec needs a kernel")
        kwargs: Dict[str, Any] = dict(doc)
        if "ways" in kwargs:
            kwargs["ways"] = tuple(kwargs["ways"])
        if kwargs.get("tilings") is not None:
            kwargs["tilings"] = tuple(kwargs["tilings"])
        if kwargs.get("search") is not None:
            kwargs["search"] = SearchSettings.from_json(kwargs["search"])
        elif "search" in kwargs:
            del kwargs["search"]
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"malformed job spec: {exc}") from exc

    def canonical(self) -> str:
        """Canonical JSON text (the input to :attr:`spec_hash`)."""
        return json.dumps(self.to_json(), sort_keys=True)

    @property
    def spec_hash(self) -> str:
        """SHA-256 of the canonical spec: the coalescing key."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def configs(self) -> List[CacheConfig]:
        """The grid in canonical sweep order (a search's candidate space)."""
        return order_configs(
            design_space(
                max_size=self.max_size,
                min_size=self.min_size,
                ways=self.ways,
                tilings=self.tilings,
            )
        )

    def total_work(self) -> int:
        """The job's progress denominator.

        A sweep evaluates every grid point; a search's nominal budget is
        ``generations x population`` unique configurations requested (it
        usually touches far fewer grid points than the sweep would).
        """
        if self.search is not None:
            return self.search.budget
        return len(self.configs())

    def build_evaluator(
        self, store: Optional[ResultStore] = None
    ) -> Any:
        """The engine evaluator for this spec (store-backed when given)."""
        evaluator = Evaluator(
            KernelWorkload(
                get_kernel(self.kernel), optimize_layout=self.optimize_layout
            ),
            backend=self.backend,
            energy_model=get_energy_model("hwo", sram=get_sram(self.sram)),
        )
        if store is None:
            return evaluator
        return StoreBackedEvaluator(evaluator, store)

    def eval_id(self) -> str:
        """The store fingerprint of this spec's evaluator."""
        return evaluator_fingerprint(self.build_evaluator())


@dataclass
class Job:
    """One tracked sweep: spec + lifecycle + progress + result."""

    spec: JobSpec
    priority: int = DEFAULT_PRIORITY
    job_id: str = ""
    state: str = "queued"
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    done_configs: int = 0
    total_configs: int = 0
    coalesced: int = 0
    resumed: bool = False
    #: Trace identity (repro.obs.trace); ``None`` runs the job untraced.
    trace_id: Optional[str] = None
    #: Who submitted the job (fair-share / quota accounting key).
    client_id: str = DEFAULT_CLIENT
    #: Wall-clock budget from submission; expiry cancels the job.
    deadline_s: Optional[float] = None
    #: Bumped on every visible change; progress streams key off it.
    version: int = 0
    #: In-memory result (after restart, results come from the store).
    result: Optional[ExplorationResult] = None
    #: Set once cancellation was requested (volatile; the runner wires
    #: ``cancel_event`` into the sweep when the job starts executing).
    cancel_requested: bool = field(default=False, repr=False)
    cancel_event: Optional[threading.Event] = field(default=None, repr=False)
    #: Every snapshot this job has published, in order.  ``/events``
    #: consumers replay it from index 0, so any number of concurrent
    #: streams see the identical, complete sequence (volatile: not
    #: persisted, rebuilt with one snapshot on recovery).
    history: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = f"{self.spec.spec_hash[:12]}-{uuid.uuid4().hex[:8]}"
        if not self.total_configs:
            self.total_configs = self.spec.total_work()

    @property
    def terminal(self) -> bool:
        """Whether the job reached ``done``, ``failed`` or ``cancelled``."""
        return self.state in ("done", "failed", "cancelled")

    def deadline_at(self) -> Optional[float]:
        """Absolute wall-clock expiry of the job (``None`` = no deadline)."""
        if self.deadline_s is None:
            return None
        return self.submitted_s + self.deadline_s

    def to_json(self) -> Dict[str, Any]:
        """The job record served by ``GET /jobs/<id>`` (and persisted)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec.spec_hash,
            "priority": self.priority,
            "state": self.state,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "done_configs": self.done_configs,
            "total_configs": self.total_configs,
            "coalesced": self.coalesced,
            "resumed": self.resumed,
            "trace_id": self.trace_id,
            "client_id": self.client_id,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Job":
        """Rebuild a persisted job record (dropping volatile fields)."""
        return cls(
            spec=JobSpec.from_json(doc["spec"]),
            priority=int(doc.get("priority", DEFAULT_PRIORITY)),
            job_id=doc["job_id"],
            state=doc.get("state", "queued"),
            submitted_s=float(doc.get("submitted_s", 0.0)),
            started_s=doc.get("started_s"),
            finished_s=doc.get("finished_s"),
            error=doc.get("error"),
            done_configs=int(doc.get("done_configs", 0)),
            total_configs=int(doc.get("total_configs", 0)),
            coalesced=int(doc.get("coalesced", 0)),
            resumed=bool(doc.get("resumed", False)),
            trace_id=doc.get("trace_id"),
            client_id=validate_client_id(doc.get("client_id")),
            deadline_s=doc.get("deadline_s"),
        )


class JobManager:
    """Bounded fair-share queue + registry + persistence for jobs.

    All mutation happens under one condition variable; every visible
    change bumps the job's ``version`` and wakes waiters, which is what
    the long-poll and progress-streaming endpoints block on.

    Admission runs in policy order -- drain check, coalescing (which
    still charges the rate limit), per-client in-flight quota, global
    depth bound, then the per-client rate limit, so only admissible
    submissions debit the client's token bucket --
    and dequeue is deficit round-robin over per-client priority
    subqueues (see :class:`~repro.serve.tenancy.TenancyPolicy` for the
    knobs; the zero-config default is unlimited and single-tenant
    behaviour is unchanged).  ``clock`` is injectable wall-clock time so
    fairness and deadline tests run deterministically.
    """

    def __init__(
        self,
        store: ResultStore,
        max_depth: int = 16,
        retry_after_s: float = 2.0,
        tenancy: Optional[TenancyPolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.store = store
        self.max_depth = max_depth
        self.retry_after_s = retry_after_s
        self.tenancy = tenancy if tenancy is not None else TenancyPolicy()
        self._clock = clock
        self._cond = threading.Condition()
        self._jobs: "Dict[str, Job]" = {}
        #: client_id -> min-heap of (priority, seq, job_id).
        self._queues: Dict[str, List[Tuple[int, int, str]]] = {}
        #: Deficit-round-robin state: visit order, pointer, credits.
        self._rr: List[str] = []
        self._rr_pos = 0
        self._deficit: Dict[str, float] = {}
        self._queued = 0
        #: client_id -> queued + running jobs (quota accounting).
        self._inflight: Dict[str, int] = {}
        self._seq = itertools.count()
        #: spec_hash -> job_id for every queued or running job.
        self._active: Dict[str, str] = {}
        self._draining = False
        self._stopped = False

    # ------------------------------------------------------------------
    # submission / admission control / coalescing

    def submit(
        self,
        spec: JobSpec,
        priority: int = DEFAULT_PRIORITY,
        trace_id: Optional[str] = None,
        client_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Tuple[Job, bool]:
        """Queue a job (or coalesce onto an active one).

        Returns ``(job, coalesced)``.  Raises :class:`QueueFullError`
        when the queue is at capacity, a
        :class:`~repro.serve.tenancy.TenancyError` subclass when the
        client's rate limit or in-flight quota rejects the submission
        (both map to ``429`` with per-client ``Retry-After``), and
        :class:`ServiceDrainingError` during drain.  ``trace_id`` opts
        the job into a ``repro.trace/1`` timeline; a coalesced
        submission joins the original job's trace and the job keeps the
        most permissive of the deadlines asked of it.
        """
        metrics = get_metrics()
        client = validate_client_id(client_id)
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        with self._cond:
            if self._draining:
                raise ServiceDrainingError(
                    "service is draining; not accepting new jobs"
                )
            active_id = self._active.get(spec.spec_hash)
            if active_id is not None:
                # A coalesced join still charges the client's token
                # bucket: coalesced spam still costs writes.
                self.tenancy.check_rate(client)
                job = self._jobs[active_id]
                job.coalesced += 1
                if job.deadline_s is not None:
                    # Most permissive deadline wins: joining without one
                    # lifts it, otherwise the *absolute* expiries merge
                    # -- the joiner's budget starts now, not at the
                    # original submission.
                    if deadline_s is None:
                        job.deadline_s = None
                    else:
                        job.deadline_s = max(
                            job.deadline_s,
                            (self._clock() - job.submitted_s) + deadline_s,
                        )
                self._touch(job)
                metrics.counter("serve.jobs_coalesced").inc()
                self._persist(job)
                self._cond.notify_all()
                return job, True
            self.tenancy.check_inflight(
                client, self._inflight.get(client, 0), self.retry_after_s
            )
            if self._queued >= self.max_depth:
                metrics.counter("serve.jobs_rejected").inc()
                raise QueueFullError(self.retry_after_s)
            # The bucket is debited only once the submission is otherwise
            # admissible: a quota or queue-full rejection must not eat
            # rate budget the client needs for its Retry-After retry.
            self.tenancy.check_rate(client)
            job = Job(
                spec=spec,
                priority=priority,
                trace_id=trace_id,
                client_id=client,
                deadline_s=deadline_s,
                submitted_s=self._clock(),
            )
            self._register(job)
            self._touch(job)
            metrics.counter("serve.jobs_submitted").inc()
            metrics.gauge("serve.queue_depth").set(self._queued)
            self._persist(job)
            self._cond.notify_all()
            return job, False

    def _touch(self, job: Job) -> None:
        """Publish a visible change: bump the version, append to history."""
        job.version += 1
        job.history.append(job.to_json())

    def _register(self, job: Job) -> None:
        """Track a queued job (caller holds the lock)."""
        self._jobs[job.job_id] = job
        self._active[job.spec.spec_hash] = job.job_id
        client = job.client_id
        if client not in self._queues:
            self._queues[client] = []
            self._rr.append(client)
            self._deficit.setdefault(client, 0.0)
        heapq.heappush(
            self._queues[client], (job.priority, next(self._seq), job.job_id)
        )
        self._queued += 1
        self._inflight[client] = self._inflight.get(client, 0) + 1

    def recover(self) -> int:
        """Re-enqueue persisted jobs interrupted by a crash or restart.

        ``queued`` and ``running`` records go back on the queue (their
        checkpoint journals make the resume cheap); terminal records are
        registered for ``GET /jobs`` history.  Returns the number of jobs
        re-enqueued.
        """
        recovered = 0
        docs = sorted(self.store.load_jobs(), key=lambda d: d.get("submitted_s", 0.0))
        with self._cond:
            for doc in docs:
                try:
                    job = Job.from_json(doc)
                except (KeyError, ValueError) as exc:
                    logger.warning(
                        "ignoring unreadable persisted job record: %s", exc
                    )
                    continue
                if job.job_id in self._jobs:
                    continue
                if job.terminal:
                    self._jobs[job.job_id] = job
                    job.history.append(job.to_json())
                    continue
                job.state = "queued"
                job.resumed = True
                self._register(job)
                self._touch(job)
                self._persist(job)
                recovered += 1
            if recovered:
                get_metrics().counter("serve.jobs_recovered").inc(recovered)
                self._cond.notify_all()
        if recovered:
            logger.info("recovered %d interrupted job(s)", recovered)
        return recovered

    # ------------------------------------------------------------------
    # runner side

    def next_job(self, timeout_s: float = 0.5) -> Optional[Job]:
        """Claim the next job under fair share (blocks up to ``timeout_s``).

        Deficit round-robin: a pointer walks the clients with queued
        work; each visit credits the client's weight, and one unit of
        deficit buys one job (priority-ordered *within* the client).  A
        job whose deadline already passed while queued is finalised as
        ``cancelled`` at claim time instead of being started.
        """
        metrics = get_metrics()
        with self._cond:
            if not self._queued:
                self._cond.wait(timeout_s)
            while True:
                job = self._pick_locked()
                if job is None:
                    return None
                deadline_at = job.deadline_at()
                now = self._clock()
                if deadline_at is not None and now >= deadline_at:
                    self._finalize_cancel_locked(
                        job,
                        f"deadline of {job.deadline_s:g}s expired "
                        "before the job started",
                    )
                    continue
                job.state = "running"
                job.started_s = now
                self._touch(job)
                wait_s = max(0.0, job.started_s - job.submitted_s)
                metrics.histogram("serve.queue.wait_seconds").observe(wait_s)
                metrics.histogram(
                    f"serve.fairshare.wait_seconds.{job.client_id}"
                ).observe(wait_s)
                metrics.counter(
                    f"serve.fairshare.dequeued.{job.client_id}"
                ).inc()
                metrics.gauge("serve.queue_depth").set(self._queued)
                self._persist(job)
                self._cond.notify_all()
                return job

    def _pick_locked(self) -> Optional[Job]:
        """Pop one job by deficit round-robin (caller holds the lock)."""
        while self._queued and self._rr:
            if self._rr_pos >= len(self._rr):
                self._rr_pos = 0
            client = self._rr[self._rr_pos]
            heap = self._queues.get(client)
            if not heap:
                # The client's subqueue drained; retire its DRR slot (a
                # returning client starts with zero credit, so idle time
                # never banks bandwidth).
                self._drop_client_locked(client)
                continue
            credit = self._deficit.get(client, 0.0)
            if credit < 1.0:
                credit += self.tenancy.weight(client)
                self._deficit[client] = credit
                if credit < 1.0:
                    # Fractional weights accrue across rounds.
                    self._rr_pos += 1
                    continue
            self._deficit[client] = credit - 1.0
            _, _, job_id = heapq.heappop(self._queues[client])
            self._queued -= 1
            if not self._queues[client]:
                self._drop_client_locked(client)
            elif self._deficit[client] < 1.0:
                self._rr_pos += 1
            return self._jobs[job_id]
        return None

    def _drop_client_locked(self, client: str) -> None:
        """Forget an emptied subqueue and its DRR credit."""
        self._queues.pop(client, None)
        self._deficit.pop(client, None)
        try:
            index = self._rr.index(client)
        except ValueError:
            return
        self._rr.pop(index)
        if index < self._rr_pos:
            self._rr_pos -= 1

    def progress(self, job: Job, done: int, total: int) -> None:
        """Record sweep progress (journaled chunks) for streaming clients."""
        with self._cond:
            job.done_configs = done
            job.total_configs = total
            self._touch(job)
            self._cond.notify_all()

    def publish_front(self, job: Job, event: Dict[str, Any]) -> None:
        """Append one ``repro.front/1`` generation event to a search job.

        The event rides the same append-only history ``/events`` streams
        replay, so every consumer sees one ``front`` line per completed
        generation, in order, regardless of when it attached.  Front
        events carry no ``state`` key -- streams key termination off the
        job-record snapshots interleaved with them.
        """
        with self._cond:
            job.done_configs = int(event.get("evaluations", job.done_configs))
            job.version += 1
            job.history.append(dict(event))
            self._cond.notify_all()

    def finish(self, job: Job, result: ExplorationResult) -> None:
        """Mark a job done and release its coalescing slot."""
        with self._cond:
            job.result = result
            job.state = "done"
            job.done_configs = len(result)
            job.total_configs = len(result)
            job.finished_s = self._clock()
            self._touch(job)
            self._release(job)
            get_metrics().counter("serve.jobs_completed").inc()
            self._persist(job)
            self._cond.notify_all()

    def fail(self, job: Job, error: str) -> None:
        """Mark a job failed and release its coalescing slot."""
        with self._cond:
            job.state = "failed"
            job.error = error
            job.finished_s = self._clock()
            self._touch(job)
            self._release(job)
            get_metrics().counter("serve.jobs_failed").inc()
            self._persist(job)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # cancellation / deadlines

    def cancel(
        self, job_id: str, reason: str = "cancelled by client"
    ) -> Tuple[Optional[Job], bool]:
        """Request cancellation of a job; returns ``(job, changed)``.

        A queued job is removed from its subqueue and finalised
        immediately.  A running job has its cancel event set and stops
        cooperatively at the sweep's next chunk boundary (the runner
        then finalises it); ``changed`` is True in both cases.  Unknown
        ids return ``(None, False)`` and terminal jobs ``(job, False)``
        -- repeat cancellation is idempotent.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None, False
            if job.terminal:
                return job, False
            if job.state == "queued":
                self._remove_queued_locked(job)
                self._finalize_cancel_locked(job, reason)
                get_metrics().gauge("serve.queue_depth").set(self._queued)
                return job, True
            job.cancel_requested = True
            if job.cancel_event is not None:
                job.cancel_event.set()
            self._touch(job)
            self._persist(job)
            self._cond.notify_all()
            return job, True

    def cancelled(self, job: Job, reason: str) -> None:
        """Finalise a running job the sweep abandoned cooperatively."""
        with self._cond:
            if job.terminal:
                return
            self._finalize_cancel_locked(job, reason)

    def effective_deadline(self, job: Job) -> Optional[float]:
        """The job's current absolute expiry, read under the lock.

        Coalesced joins may lift or extend a running job's deadline;
        the runner's deadline watch re-reads through this every time it
        fires so the merge takes effect mid-sweep.
        """
        with self._cond:
            return job.deadline_at()

    def attach_cancel_event(self, job: Job, event: threading.Event) -> None:
        """Wire the runner's cancel event into a job (pre-sweep).

        Closes the submit/claim race: a cancellation that arrived before
        the event existed is replayed onto it immediately.
        """
        with self._cond:
            job.cancel_event = event
            if job.cancel_requested:
                event.set()

    def _remove_queued_locked(self, job: Job) -> None:
        """Drop a queued job from its client subqueue (lock held)."""
        heap = self._queues.get(job.client_id)
        if not heap:
            return
        kept = [entry for entry in heap if entry[2] != job.job_id]
        if len(kept) != len(heap):
            self._queued -= 1
        if kept:
            heapq.heapify(kept)
            self._queues[job.client_id] = kept
        else:
            self._drop_client_locked(job.client_id)

    def _finalize_cancel_locked(self, job: Job, reason: str) -> None:
        """Move a job to the ``cancelled`` terminal state (lock held).

        The checkpoint journal is deliberately left on disk: a
        resubmission of the same spec resumes from the committed chunks.
        """
        job.state = "cancelled"
        job.error = reason
        job.finished_s = self._clock()
        if job.cancel_event is not None:
            job.cancel_event.set()
        self._touch(job)
        self._release(job)
        get_metrics().counter("serve.jobs_cancelled").inc()
        self._persist(job)
        self._cond.notify_all()
        logger.info("job %s cancelled: %s", job.job_id, reason)

    def _release(self, job: Job) -> None:
        if self._active.get(job.spec.spec_hash) == job.job_id:
            del self._active[job.spec.spec_hash]
        count = self._inflight.get(job.client_id, 0)
        if count <= 1:
            self._inflight.pop(job.client_id, None)
        else:
            self._inflight[job.client_id] = count - 1

    def _persist(self, job: Job) -> None:
        try:
            self.store.save_job(job.job_id, job.to_json())
        except sqlite3.Error as exc:  # pragma: no cover - disk trouble
            logger.warning("could not persist job %s: %s", job.job_id, exc)

    # ------------------------------------------------------------------
    # reads / waiting

    def get(self, job_id: str) -> Optional[Job]:
        """The job called ``job_id``, if known."""
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        """Every known job, most recently submitted first."""
        with self._cond:
            return sorted(
                self._jobs.values(),
                key=lambda job: job.submitted_s,
                reverse=True,
            )

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Optional[Job]:
        """Block until ``job_id`` is terminal (or the timeout passes)."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                # Clamp at zero: a caller-supplied non-positive timeout
                # (or a deadline crossed between checks) must return
                # immediately, never hand Condition.wait a negative.
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._cond.wait(
                    0.5 if remaining is None else min(0.5, remaining)
                )

    def events_since(
        self, job_id: str, cursor: int, timeout_s: float = 10.0
    ) -> Tuple[Optional[Job], List[Dict[str, Any]]]:
        """The job's published snapshots past ``cursor`` (blocking).

        Blocks until new history exists, the job is terminal, or the
        timeout passes; returns ``(job, snapshots)``.  Because every
        consumer replays the same append-only history, concurrent
        ``/events`` streams of one job see identical, complete sequences
        regardless of when they attach.
        """
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return None, []
                if len(job.history) > cursor:
                    return job, list(job.history[cursor:])
                if job.terminal:
                    return job, []
                remaining = max(0.0, deadline - time.monotonic())
                if remaining <= 0:
                    return job, []
                self._cond.wait(min(0.5, remaining))

    def wait_change(
        self, job_id: str, seen_version: int, timeout_s: float = 10.0
    ) -> Optional[Job]:
        """Block until the job's version moves past ``seen_version``."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.version != seen_version or job.terminal:
                    return job
                remaining = max(0.0, deadline - time.monotonic())
                if remaining <= 0:
                    return job
                self._cond.wait(min(0.5, remaining))

    # ------------------------------------------------------------------
    # drain / shutdown

    def begin_drain(self) -> None:
        """Stop admitting jobs; queued and running work still completes."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        """Whether the service is refusing new submissions."""
        return self._draining

    def stop(self) -> None:
        """Drain and tell the runner to exit once the queue is empty."""
        with self._cond:
            self._draining = True
            self._stopped = True
            self._cond.notify_all()

    @property
    def stopped(self) -> bool:
        """Whether the runner should exit when idle."""
        return self._stopped

    def idle(self) -> bool:
        """Whether nothing is queued or running."""
        with self._cond:
            return not self._queued and not self._active

    def queue_stats(self) -> Dict[str, Any]:
        """Queue depth and per-client in-flight counts (for /health)."""
        with self._cond:
            return {
                "queued": self._queued,
                "inflight": dict(self._inflight),
            }


class _DeadlineWatch:
    """Deadline enforcement for one running job, coalesce-merge aware.

    A one-shot timer would bake in whatever deadline existed at claim
    time, but a coalesced submission can lift or extend a running job's
    deadline (``JobManager.submit`` merges absolute expiries).  The
    watch therefore re-reads the job's *effective* deadline every time
    it fires: lifted means do nothing, extended means re-arm for the
    remainder, expired means set the cancel event.  ``stop`` makes any
    pending fire a no-op, so a finished job never holds a live timer.
    """

    def __init__(
        self,
        cancel_event: threading.Event,
        read_deadline_at: Callable[[], Optional[float]],
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._cancel_event = cancel_event
        self._read_deadline_at = read_deadline_at
        self._clock = clock
        self._lock = threading.Lock()
        self._timer: Optional[threading.Timer] = None
        self._stopped = False

    def arm(self) -> None:
        """(Re-)schedule against the deadline as it stands right now."""
        deadline_at = self._read_deadline_at()
        if deadline_at is None:
            return
        remaining = deadline_at - self._clock()
        if remaining <= 0:
            self._cancel_event.set()
            return
        with self._lock:
            if self._stopped:
                return
            self._timer = threading.Timer(remaining, self.arm)
            self._timer.daemon = True
            self._timer.start()

    def stop(self) -> None:
        """Disarm permanently (the job reached a terminal state)."""
        with self._lock:
            self._stopped = True
            if self._timer is not None:
                self._timer.cancel()


class JobRunner(threading.Thread):
    """The worker loop: claim, sweep (with checkpoints), record.

    One runner executes jobs in fair-share order; parallelism *within* a
    job comes from ``sweep_jobs``
    (:class:`~repro.engine.parallel.ParallelSweep` fan-out).  Every job
    journals to ``<spool>/<spec_hash>.jsonl`` and always runs with
    ``resume=True``, so a job interrupted by ``kill -9`` -- or cancelled
    by a client or its deadline -- picks up exactly where its journal
    stops on resubmission and the final result is bit-identical to an
    uninterrupted run.  (The journal is keyed by spec hash, not job id:
    coalescing guarantees at most one active job per spec, and a *new*
    job for a cancelled spec must find the old journal to resume.)

    Backends are guarded per ``eval_id`` by a
    :class:`~repro.engine.resilience.CircuitBreaker`: once one opens,
    jobs against that evaluator fail fast with a typed error (and a
    ``breaker.fail_fast`` count) until a cooldown probe closes it, so a
    broken plugin backend cannot drain every worker's retry budget.
    """

    def __init__(
        self,
        manager: JobManager,
        spool_dir: str,
        sweep_jobs: int = 1,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
    ) -> None:
        super().__init__(name="repro-serve-runner", daemon=True)
        self.manager = manager
        self.spool_dir = str(spool_dir)
        self.sweep_jobs = max(1, int(sweep_jobs))
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        os.makedirs(self.spool_dir, exist_ok=True)

    def checkpoint_path(self, job: Job) -> str:
        """Where one job journals its completed work (by spec hash).

        Search jobs journal completed *generations* in the
        ``repro.moo.checkpoint/1`` format under a distinct ``.moo.jsonl``
        suffix, so the store's journal-based repair (which replays sweep
        chunk journals) never misreads one.
        """
        if job.spec.search is not None:
            return os.path.join(
                self.spool_dir, f"{job.spec.spec_hash}.moo.jsonl"
            )
        return os.path.join(self.spool_dir, f"{job.spec.spec_hash}.jsonl")

    def breaker_for(self, eval_id: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one evaluator."""
        with self._breakers_lock:
            breaker = self._breakers.get(eval_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=eval_id[:12],
                    failure_threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                )
                self._breakers[eval_id] = breaker
            return breaker

    def run(self) -> None:  # pragma: no cover - exercised via the service
        while True:
            job = self.manager.next_job(timeout_s=0.2)
            if job is None:
                if self.manager.stopped:
                    return
                continue
            try:
                self.execute(job)
            except Exception as exc:
                # Backstop: the runner loop must outlive any single job
                # -- a dead runner accepts submissions forever without
                # executing them.
                logger.exception(
                    "job %s escaped execute(); failing it", job.job_id
                )
                try:
                    self.manager.fail(job, f"{type(exc).__name__}: {exc}")
                except Exception:
                    logger.exception(
                        "could not finalise crashed job %s", job.job_id
                    )

    def execute(self, job: Job) -> None:
        """Run one job to a terminal state (never raises).

        A job carrying a ``trace_id`` runs under an active
        :class:`~repro.obs.trace.TraceRecorder`: a synthetic
        ``queue.wait`` event covers submit to start, a root ``job`` span
        wraps the sweep (whose workers ship their chunk events back
        through the payload protocol), and the merged timeline is
        persisted to the store's ``traces`` table -- on failure too.
        The timeline lands *before* the job turns terminal, so a client
        woken by the done state never races the trace write.
        """
        started = time.perf_counter()
        tracer = obs_trace.tracing(job.trace_id) if job.trace_id else None
        recorder = tracer.__enter__() if tracer is not None else None
        if recorder is not None and job.started_s is not None:
            recorder.add_event(
                ("job", "queue.wait"),
                job.submitted_s,
                max(0.0, job.started_s - job.submitted_s),
                {"priority": job.priority},
            )
        cancel_event = threading.Event()
        self.manager.attach_cancel_event(job, cancel_event)
        deadline_watch = _DeadlineWatch(
            cancel_event,
            lambda: self.manager.effective_deadline(job),
            clock=self.manager._clock,
        )
        deadline_watch.arm()
        result = None
        error = None
        cancelled_reason = None
        try:
            with span("job", job_id=job.job_id, kernel=job.spec.kernel):
                if job.spec.search is not None:
                    result = self._search(job, cancel_event)
                else:
                    result = self._sweep(job, cancel_event)
        except SweepCancelledError as exc:
            if job.cancel_requested:
                cancelled_reason = "cancelled by client"
            else:
                # deadline_s can be None here: a coalesced join lifted
                # the deadline after the watch had already fired.  The
                # sweep has unwound either way; finalise with the
                # journal intact so a resubmission resumes.
                budget = (
                    "deadline"
                    if job.deadline_s is None
                    else f"deadline of {job.deadline_s:g}s"
                )
                cancelled_reason = (
                    f"{budget} exceeded "
                    f"({exc.done} of {exc.total} configurations done; "
                    "resubmit to resume from the checkpoint)"
                )
            logger.info("job %s cancelled: %s", job.job_id, cancelled_reason)
        except Exception as exc:
            logger.warning("job %s failed: %s", job.job_id, exc)
            error = f"{type(exc).__name__}: {exc}"
        finally:
            deadline_watch.stop()
            if tracer is not None:
                tracer.__exit__(None, None, None)
                self._record_trace(job, recorder)
        if cancelled_reason is not None:
            # The journal stays: a resubmission of the same spec resumes.
            self.manager.cancelled(job, cancelled_reason)
            return
        if error is not None:
            self.manager.fail(job, error)
            return
        self.manager.finish(job, result)
        get_metrics().histogram("serve.job_seconds").observe(
            time.perf_counter() - started
        )
        try:
            os.remove(self.checkpoint_path(job))
        except OSError:
            pass

    def _record_trace(self, job: Job, recorder: Any) -> None:
        """Persist the job's merged timeline (best-effort, like manifests)."""
        try:
            document = obs_trace.build_document(recorder, job_id=job.job_id)
            self.manager.store.save_trace(job.job_id, document)
        except Exception as exc:  # pragma: no cover - timeline best-effort
            logger.warning(
                "could not record trace for job %s: %s", job.job_id, exc
            )

    def _sweep(
        self, job: Job, cancel_event: Optional[threading.Event] = None
    ) -> ExplorationResult:
        spec = job.spec
        evaluator = spec.build_evaluator(self.manager.store)
        configs = spec.configs()
        breaker = self.breaker_for(evaluator.eval_id)
        if not breaker.allow():
            get_metrics().counter("breaker.fail_fast").inc()
            raise CircuitOpenError(
                f"circuit breaker for evaluator {evaluator.eval_id[:12]} "
                f"({spec.kernel}/{spec.backend}) is open; "
                f"retry in {breaker.retry_after_s():.0f}s",
                retry_after_s=breaker.retry_after_s(),
            )
        self.manager.progress(job, 0, len(configs))
        resilience = ResilienceOptions(
            checkpoint=self.checkpoint_path(job),
            resume=True,
            cancel_event=cancel_event,
            breaker=breaker,
        )
        sweep = ParallelSweep(
            jobs=self.sweep_jobs,
            resilience=resilience,
            on_progress=lambda done, total: self.manager.progress(
                job, done, total
            ),
        )
        with span(
            "sweep",
            configs=len(configs),
            jobs=self.sweep_jobs,
            backend=spec.backend,
        ):
            estimates = sweep.run(evaluator, configs)
        # Rows resumed from the checkpoint journal never pass through the
        # evaluator; backfill them so the store holds the complete sweep
        # (INSERT OR IGNORE makes the overlap free).
        with span("store.write", rows=len(configs)):
            self.manager.store.put_many(
                evaluator.eval_id, zip(configs, estimates)
            )
        self._record_manifest(job, evaluator, configs, resilience=resilience)
        return ExplorationResult(estimates)

    def _search(
        self, job: Job, cancel_event: Optional[threading.Event] = None
    ) -> ExplorationResult:
        """Run one multi-objective search job (spec carries ``search``).

        One ``repro.front/1`` event per completed generation is published
        into the job's history (the ``/events`` wire); generations
        journal to ``<spool>/<spec_hash>.moo.jsonl`` so a cancelled,
        expired or killed search resumes bit-identically on
        resubmission.  A cooperative cancellation persists the front as
        of the last complete generation in a partial search manifest
        before unwinding.
        """
        spec = job.spec
        settings = spec.search
        assert settings is not None
        evaluator = spec.build_evaluator(self.manager.store)
        configs = spec.configs()
        breaker = self.breaker_for(evaluator.eval_id)
        if not breaker.allow():
            get_metrics().counter("breaker.fail_fast").inc()
            raise CircuitOpenError(
                f"circuit breaker for evaluator {evaluator.eval_id[:12]} "
                f"({spec.kernel}/{spec.backend}) is open; "
                f"retry in {breaker.retry_after_s():.0f}s",
                retry_after_s=breaker.retry_after_s(),
            )
        self.manager.progress(job, 0, settings.budget)
        last_event: Dict[str, Any] = {}

        def publish(event: Dict[str, Any], archive: Any) -> None:
            last_event.clear()
            last_event.update(event)
            self.manager.publish_front(job, event)

        try:
            with span(
                "moo.job",
                searcher=settings.searcher,
                space=len(configs),
                backend=spec.backend,
            ):
                run = run_search(
                    evaluator,
                    configs,
                    settings,
                    jobs=self.sweep_jobs,
                    checkpoint=self.checkpoint_path(job),
                    resume=True,
                    cancel_event=cancel_event,
                    on_generation=publish,
                )
        except SweepCancelledError:
            if last_event:
                self._record_manifest(
                    job,
                    evaluator,
                    configs,
                    search={
                        "schema": last_event["schema"],
                        "settings": settings.to_json(),
                        "generations": int(last_event["generation"]) + 1,
                        "evaluations": last_event["evaluations"],
                        "reference": last_event["reference"],
                        "hypervolume": last_event["hypervolume"],
                        "front": last_event["points"],
                        "partial": True,
                    },
                )
            raise
        # Estimates resumed from the generation journal never touched the
        # store-backed evaluator this run; backfill so the store holds
        # every configuration the search evaluated.
        with span("store.write", rows=len(run.estimates)):
            self.manager.store.put_many(
                evaluator.eval_id,
                [(estimate.config, estimate) for estimate in run.estimates],
            )
        self._record_manifest(
            job, evaluator, configs, search=run.manifest_doc()
        )
        return run.result

    def _record_manifest(
        self,
        job: Job,
        evaluator: Any,
        configs: List[CacheConfig],
        resilience: Optional[ResilienceOptions] = None,
        search: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist the job's ``repro.manifest/1`` provenance document.

        The manifest lives in its own store table, keyed by job id --
        provenance *about* the result rows, never part of their keys.  A
        manifest failure must not fail the sweep it describes.  Search
        jobs add a ``searcher`` component row and the ``repro.front/1``
        search section (settings, budget spent, final front).
        """
        spec = job.spec
        try:
            components = [
                ("kernel", spec.kernel),
                ("backend", spec.backend),
                ("energy", "hwo"),
                ("sram", spec.sram),
                ("store", "sqlite"),
            ]
            seeds: Dict[str, Any] = {}
            if spec.search is not None:
                components.append(("searcher", spec.search.searcher))
                seeds["search"] = spec.search.seed
            if resilience is not None:
                seeds["retry_backoff"] = resilience.retry.seed
            manifest = build_manifest(
                components,
                spec_hash=spec.spec_hash,
                eval_id=evaluator.eval_id,
                sweep_fingerprint=sweep_fingerprint(evaluator, configs),
                seeds=seeds,
                extra=None if search is None else {"search": search},
            )
            self.manager.store.save_manifest(job.job_id, manifest)
        except Exception as exc:  # pragma: no cover - provenance best-effort
            logger.warning(
                "could not record manifest for job %s: %s", job.job_id, exc
            )


def result_to_json(result: ExplorationResult) -> List[Dict[str, Any]]:
    """Serialise a result exactly (the wire format of ``/jobs/<id>/result``)."""
    return [estimate_to_json(estimate) for estimate in result]
