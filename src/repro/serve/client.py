"""Python client for the exploration service (stdlib ``urllib`` only).

:class:`ServeClient` speaks the ``repro.serve/1`` HTTP/JSON protocol:
submit sweeps (with automatic, bounded retry on ``429``/``503``
backpressure), poll or long-poll job status, cancel jobs, stream
progress events, and fetch results -- which deserialise through the same
exact :func:`~repro.engine.resilience.estimate_from_json` round-trip the
checkpoint journal uses, so a result fetched over the wire compares equal
to one computed locally.

Multi-tenant deployments name each client
(``ServeClient(..., client_id="searcher-a")``); the id rides in the
``X-Repro-Client`` header on every request, and per-client ``429``
rejections are retried sleeping the server's *exact* ``retry_after_s``
hint.  When the server offers no hint the client backs off with full
jitter -- seeded via ``retry_seed`` so tests are deterministic.

Quickstart::

    from repro.serve import JobSpec, ServeClient

    client = ServeClient("http://127.0.0.1:8000")
    job = client.submit(JobSpec(kernel="compress", max_size=256))
    job = client.wait(job["job_id"])
    result = client.result(job["job_id"])
    print(result.min_energy())
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.engine.resilience import estimate_from_json
from repro.engine.result import ExplorationResult
from repro.serve.jobs import JobSpec
from repro.serve.tenancy import validate_client_id

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An HTTP request to the service failed (carries status and body)."""

    def __init__(self, status: int, message: str, doc: Optional[Dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.doc = doc or {}


class ServeClient:
    """A small, dependency-free client for one service endpoint."""

    #: Full-jitter backoff shape when the server sends no Retry-After:
    #: sleep ``uniform(0, min(cap, base * 2**attempt))``.
    RETRY_BASE_S = 0.5
    RETRY_CAP_S = 10.0

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8000",
        timeout_s: float = 30.0,
        trace: bool = True,
        client_id: Optional[str] = None,
        retry_seed: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: Mint a fresh trace_id per submit (see :meth:`submit`).
        self.trace_enabled = trace
        #: Tenant identity sent as ``X-Repro-Client`` (None -> anonymous).
        self.client_id = (
            None if client_id is None else validate_client_id(client_id)
        )
        self._rng = random.Random(retry_seed)

    # ------------------------------------------------------------------
    # transport

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s
            ) as response:
                return json.loads(response.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode(errors="replace")
            try:
                doc = json.loads(raw)
            except json.JSONDecodeError:
                doc = {"error": raw}
            retry_after = exc.headers.get("Retry-After")
            if retry_after is not None:
                doc.setdefault("retry_after_s", float(retry_after))
            raise ServeError(
                exc.code, doc.get("error", raw), doc
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {self.base_url}: {exc.reason}")

    def _request_text(self, path: str) -> str:
        """``GET`` a text (non-JSON) endpoint and return the raw body."""
        request = urllib.request.Request(
            f"{self.base_url}{path}", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServeError(
                exc.code, exc.read().decode(errors="replace")
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {self.base_url}: {exc.reason}")

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> Dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def metrics(self, format: str = "json") -> Union[Dict[str, Any], str]:
        """``GET /metrics``: the ``repro.obs/1`` report + store section.

        ``format="prometheus"`` returns the text exposition (0.0.4) body
        as a string instead.
        """
        if format == "prometheus":
            return self._request_text("/metrics?format=prometheus")
        return self._request("GET", "/metrics")

    def trace(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>/trace``: the finalised ``repro.trace/1`` doc."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def retry_delay_s(
        self, attempt: int, retry_after_s: Optional[float]
    ) -> float:
        """The backoff before retrying attempt ``attempt``.

        The server's per-client ``retry_after_s`` hint is honoured
        *exactly* (capped at the retry ceiling) -- it already knows when
        the next token accrues, so jittering on top would only add
        latency.  Without a hint, full jitter over an exponentially
        growing window decorrelates the retrying herd.
        """
        if retry_after_s is not None:
            return min(float(retry_after_s), self.RETRY_CAP_S)
        window = min(self.RETRY_CAP_S, self.RETRY_BASE_S * (2.0 ** attempt))
        return self._rng.uniform(0.0, window)

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        priority: int = 10,
        max_attempts: int = 6,
        trace_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        path: str = "/jobs",
    ) -> Dict[str, Any]:
        """``POST /jobs``, honouring ``429``/``503`` backpressure.

        Retries up to ``max_attempts`` times, sleeping the server's
        exact ``retry_after_s`` hint when one is given and a seeded
        full-jitter backoff otherwise (see :meth:`retry_delay_s`); any
        other error surfaces immediately as :class:`ServeError`.  Returns
        the job record with a ``"coalesced"`` flag folded in.

        ``deadline_s`` bounds the job's wall clock server-side: an
        expired job cancels cooperatively but keeps its checkpoint
        journal, so resubmitting the same spec resumes where it stopped.

        When the client was built with ``trace=True`` (the default) a
        fresh ``trace_id`` is minted per submit and sent with the spec, so
        the finished job's timeline is available from :meth:`trace`;
        pass an explicit ``trace_id`` to reuse one, or build the client
        with ``trace=False`` to opt out.
        """
        doc = spec.to_json() if isinstance(spec, JobSpec) else dict(spec)
        body: Dict[str, Any] = {"spec": doc, "priority": priority}
        if deadline_s is not None:
            body["deadline_s"] = float(deadline_s)
        if trace_id is None and self.trace_enabled:
            trace_id = uuid.uuid4().hex
        if trace_id is not None:
            body["trace_id"] = trace_id
        last_error: Optional[ServeError] = None
        for attempt in range(max_attempts):
            try:
                reply = self._request("POST", path, body=body)
            except ServeError as exc:
                if exc.status not in (429, 503) or attempt == max_attempts - 1:
                    raise
                last_error = exc
                hint = exc.doc.get("retry_after_s")
                time.sleep(self.retry_delay_s(attempt, hint))
                continue
            job = reply["job"]
            job["coalesced"] = reply.get("coalesced", False)
            return job
        raise last_error or ServeError(  # pragma: no cover
            429, "job queue stayed full"
        )

    def pareto(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        priority: int = 10,
        max_attempts: int = 6,
        trace_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """``POST /pareto``: submit a multi-objective search job.

        The spec must carry a ``search`` section (searcher, generations,
        population, seed, objectives...); the server rejects specs
        without one on this route.  The returned job streams one
        ``repro.front/1`` event per completed generation -- see
        :meth:`fronts` -- and its ``/result`` is the final Pareto front.
        Backpressure retry behaviour matches :meth:`submit`.
        """
        return self.submit(
            spec,
            priority=priority,
            max_attempts=max_attempts,
            trace_id=trace_id,
            deadline_s=deadline_s,
            path="/pareto",
        )

    def fronts(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """``GET /jobs/<id>/events`` filtered to ``repro.front/1`` events.

        Yields one event per completed generation (generation index,
        evaluations used, archive points, hypervolume) until the job's
        event stream terminates.
        """
        for event in self.events(job_id):
            if event.get("event") == "front":
                yield event

    def job(
        self, job_id: str, wait_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """``GET /jobs/<id>`` (long-polling when ``wait_s`` is given)."""
        path = f"/jobs/{job_id}"
        timeout = None
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
            timeout = wait_s + self.timeout_s
        return self._request("GET", path, timeout_s=timeout)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs``: every known job, most recent first."""
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /jobs/<id>``: cancel a queued or running job.

        Returns the job record; idempotent on already-cancelled jobs.
        Raises :class:`ServeError` 409 for jobs already done/failed.
        """
        reply = self._request("DELETE", f"/jobs/{job_id}")
        job = reply["job"]
        job["cancelled"] = reply.get("cancelled", False)
        return job

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None, poll_s: float = 5.0
    ) -> Dict[str, Any]:
        """Block until the job is terminal (long-polls in ``poll_s`` slices)."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            job = self.job(job_id, wait_s=poll_s)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                return job

    def result(self, job_id: str) -> ExplorationResult:
        """``GET /jobs/<id>/result`` as an exact :class:`ExplorationResult`."""
        doc = self._request("GET", f"/jobs/{job_id}/result")
        return ExplorationResult(
            [estimate_from_json(row) for row in doc["estimates"]]
        )

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """``GET /jobs/<id>/events``: yield progress snapshots until terminal."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode())
        except urllib.error.HTTPError as exc:
            raise ServeError(exc.code, exc.read().decode(errors="replace"))

    def submit_and_wait(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        priority: int = 10,
        timeout_s: Optional[float] = None,
    ) -> ExplorationResult:
        """Submit, wait for completion, and fetch the exact result."""
        job = self.submit(spec, priority=priority)
        finished = self.wait(job["job_id"], timeout_s=timeout_s)
        if finished["state"] != "done":
            raise ServeError(
                500,
                f"job {job['job_id']} ended {finished['state']}: "
                f"{finished.get('error')}",
            )
        return self.result(job["job_id"])
