"""The exploration service: a stdlib-only HTTP/JSON front end.

``repro serve`` binds :class:`ExplorationService` -- store + job manager +
runner -- behind a :class:`http.server.ThreadingHTTPServer`.  Endpoints
(all JSON):

``GET /health`` / ``GET /healthz``
    Liveness: ``{"status": "ok" | "draining", "schema": "repro.serve/1"}``
    -- always ``200`` while the process can answer at all.
``GET /readyz`` (or ``GET /health?ready=1``)
    Readiness: ``200`` only when the service is accepting work; ``503``
    while draining or before recovery replay finishes, so load balancers
    stop routing submissions without killing in-flight streams.
``GET /metrics``
    The ``repro.obs/1`` report (metrics registry, EvalCache snapshot)
    plus a ``store`` section with the persistent-store counters and
    per-table row counts / file size (gauges refreshed on every
    snapshot).  ``?format=prometheus`` serves the same registry as
    Prometheus text exposition 0.0.4 instead
    (:mod:`repro.obs.prometheus`).
``POST /jobs``
    Submit ``{"spec": {...}, "priority": N}``.  Replies ``202`` with the
    job record (``"coalesced": true`` when the submission attached to an
    already-active identical job), ``429`` with a ``Retry-After`` header
    when admission control rejects it, ``503`` while draining, ``400``
    for a malformed spec.  An optional ``trace_id`` joins the job to a
    client-minted trace; without one the server mints its own unless
    started with tracing off (``--no-trace``), or the body says
    ``"trace": false``.  Client identity rides in the ``X-Repro-Client``
    header (or a ``client_id`` body field); per-client rate limits and
    in-flight quotas answer ``429`` with the client's *exact*
    ``retry_after_s`` in the body.  An optional ``deadline_s`` bounds the
    job's wall clock: when it expires the sweep cancels cooperatively and
    the checkpoint journal survives, so a resubmission resumes.
``DELETE /jobs/<id>``
    Cancel: dequeues a queued job immediately, signals a running sweep
    to stop at the next chunk boundary.  ``200`` with the job record
    (idempotent on already-cancelled jobs), ``409`` for jobs already
    done/failed, ``404`` for unknown ids.
``GET /jobs``
    All known jobs, most recent first.
``GET /jobs/<id>[?wait=SECONDS]``
    One job record; ``wait`` long-polls until the job is terminal.  Once
    a sweep has run, the record carries the job's ``repro.manifest/1``
    provenance document under ``manifest``.
``GET /jobs/<id>/result``
    The exact result rows once the job is ``done`` (``409`` before).
``GET /jobs/<id>/trace``
    The job's ``repro.trace/1`` timeline once it is terminal (``409``
    while running, ``404`` for untraced jobs).
``POST /pareto``
    Submit a multi-objective search job: like ``POST /jobs`` but the
    spec must carry a ``search`` section (searcher, generations,
    population, seed, objectives...).  The job runs a population-based
    Pareto search over the spec's grid instead of sweeping it, streams
    one ``repro.front/1`` event per completed generation over
    ``/events``, and its result is the final front.  A ``search``
    section is also honoured on ``POST /jobs``; this route merely
    insists on one.
``GET /jobs/<id>/events``
    Progress streaming: newline-delimited JSON snapshots of the job
    record, one per state/progress change, ending at the terminal state.
    Streams replay the job's append-only snapshot history from the
    beginning, so concurrent consumers all see the identical, complete
    sequence.  Search jobs interleave ``repro.front/1`` generation
    events (``"event": "front"``, no ``state`` key) with the job-record
    snapshots.

Every request is timed into the ``serve.http.request`` histogram (plus a
per-endpoint histogram and a per-endpoint/status response counter).

Graceful drain: the first ``SIGTERM`` (or ``SIGINT``) stops admission
(new submissions get ``503``), lets the running job finish, then shuts
the listener down.  A ``kill -9`` instead is recovered on the next start:
interrupted jobs re-enqueue from the store and resume from their
checkpoint journals with bit-identical results.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core.config import CacheConfig
from repro.engine.cache import get_eval_cache
from repro.engine.result import ExplorationResult
from repro.moo.driver import run_search
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_metrics
from repro.obs.prometheus import render_prometheus
from repro.serve.jobs import (
    Job,
    JobManager,
    JobRunner,
    JobSpec,
    QueueFullError,
    ServiceDrainingError,
    result_to_json,
)
from repro.serve.store import STORE_SCHEMA, ResultStore, open_store
from repro.serve.tenancy import TenancyError, TenancyPolicy

__all__ = [
    "SERVE_SCHEMA",
    "ExplorationService",
    "ServeHTTPServer",
    "install_signal_handlers",
    "make_server",
]

SERVE_SCHEMA = "repro.serve/1"

logger = logging.getLogger(__name__)


class ExplorationService:
    """Store + job manager + runner, glued for the HTTP layer (and tests).

    ``start()`` recovers interrupted jobs from the store and launches the
    runner thread; ``stop()`` drains and joins it.  The service object is
    usable without HTTP -- the test suite drives it directly as well as
    through a live server.
    """

    def __init__(
        self,
        store_path: str,
        spool_dir: str,
        queue_depth: int = 16,
        sweep_jobs: int = 1,
        retry_after_s: float = 2.0,
        trace: bool = True,
        tenancy: Optional[TenancyPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
    ) -> None:
        self.store: ResultStore = open_store(store_path)
        self.manager = JobManager(
            self.store,
            max_depth=queue_depth,
            retry_after_s=retry_after_s,
            tenancy=tenancy,
        )
        self.runner = JobRunner(
            self.manager,
            spool_dir=spool_dir,
            sweep_jobs=sweep_jobs,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        #: Mint a trace_id for bare submissions (clients can still opt
        #: out per job with ``"trace": false``).
        self.trace = trace
        self._started = False
        #: Readiness: False until recovery replay completes, so a load
        #: balancer never routes submissions at a half-recovered service.
        self._ready = False

    def start(self) -> "ExplorationService":
        """Recover persisted jobs and start executing."""
        if not self._started:
            self.manager.recover()
            self.runner.start()
            self._started = True
            self._ready = True
        return self

    def ready(self) -> bool:
        """Accepting new work: recovery finished and not draining."""
        return self._ready and not self.manager.draining

    def begin_drain(self) -> None:
        """Refuse new submissions; in-flight work keeps running."""
        self.manager.begin_drain()

    def stop(self, wait: bool = True, timeout_s: float = 60.0) -> None:
        """Drain, let the runner finish, and close the store.

        When the runner is still alive after the join (or ``wait`` is
        False mid-sweep), the store stays open: closing it under an
        in-flight job would turn the job's own writes into spurious
        closed-connection failures.  The store then closes with the
        process.
        """
        self.manager.stop()
        if self._started and wait:
            self.runner.join(timeout_s)
        if self._started and self.runner.is_alive():
            logger.warning(
                "runner still busy after stop(); leaving the store open "
                "for the in-flight job"
            )
            return
        self.store.close()

    # ------------------------------------------------------------------
    # request-level operations (shared by HTTP handler and tests)

    def health(self) -> Dict[str, Any]:
        """The ``/health`` document."""
        from repro import __version__

        if self.manager.draining:
            status = "draining"
        elif not self._ready:
            status = "starting"
        else:
            status = "ok"
        return {
            "schema": SERVE_SCHEMA,
            "status": status,
            "ready": self.ready(),
            "version": __version__,
            "queue_idle": self.manager.idle(),
        }

    def metrics_report(self) -> Dict[str, Any]:
        """The ``/metrics`` document: ``repro.obs/1`` + store counters.

        Refreshes the ``store.*_rows`` / ``store.file_bytes`` gauges from
        the live sqlite file on every snapshot, so both the JSON report
        and the Prometheus rendering carry current store size data.
        """
        metrics = get_metrics()
        stats = self.store.stats()
        metrics.gauge("store.estimate_rows").set(stats["estimates"])
        metrics.gauge("store.job_rows").set(stats["jobs"])
        metrics.gauge("store.manifest_rows").set(stats["manifests"])
        metrics.gauge("store.trace_rows").set(stats["traces"])
        metrics.gauge("store.file_bytes").set(stats["file_bytes"])
        report = obs.build_report(cache=get_eval_cache().snapshot())
        counters = metrics.counters_matching("store.")
        report["store"] = {
            "schema": STORE_SCHEMA,
            "path": self.store.path,
            "entries": stats["estimates"],
            "rows": stats,
            "counters": counters,
        }
        report["serve"] = metrics.counters_matching("serve.")
        report["breaker"] = metrics.counters_matching("breaker.")
        return report

    def submit(
        self,
        doc: Dict[str, Any],
        client_id: Optional[str] = None,
        require_search: bool = False,
    ) -> Tuple[Job, bool]:
        """Validate and enqueue one submission document.

        ``client_id`` (the ``X-Repro-Client`` header) wins over a
        ``client_id`` body field; both absent means the anonymous tenant.
        ``require_search`` is the ``POST /pareto`` contract: the spec
        must carry a ``search`` section.
        """
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        spec = JobSpec.from_json(doc.get("spec", doc.get("job", None)))
        if require_search and spec.search is None:
            raise ValueError(
                "a /pareto submission needs a search section in its spec"
            )
        priority = doc.get("priority", 10)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError("priority must be an integer")
        if client_id is None:
            client_id = doc.get("client_id")
        deadline_s = doc.get("deadline_s")
        if deadline_s is not None:
            if (
                isinstance(deadline_s, bool)
                or not isinstance(deadline_s, (int, float))
                or deadline_s <= 0
            ):
                raise ValueError("deadline_s must be a positive number")
            deadline_s = float(deadline_s)
        trace_id = doc.get("trace_id")
        if trace_id is not None:
            if (
                not isinstance(trace_id, str)
                or not 1 <= len(trace_id) <= 64
                or not all(c.isalnum() or c in "-_" for c in trace_id)
            ):
                raise ValueError(
                    "trace_id must be 1-64 alphanumeric/-/_ characters"
                )
        elif self.trace and doc.get("trace") is not False:
            trace_id = obs_trace.new_trace_id()
        return self.manager.submit(
            spec,
            priority=priority,
            trace_id=trace_id,
            client_id=client_id,
            deadline_s=deadline_s,
        )

    def job_result(self, job: Job) -> Optional[Dict[str, Any]]:
        """The exact result document for a done job (``None`` otherwise).

        After a restart the in-memory result is gone; the rows are then
        reassembled from the persistent store, which holds every
        configuration the job evaluated.
        """
        if job.state != "done":
            return None
        result = job.result
        if result is None:
            if job.spec.search is not None:
                result = self._search_result(job)
            else:
                eval_id = job.spec.eval_id()
                configs = job.spec.configs()
                result = self.store.result_for(eval_id, configs)
                if result is None:
                    # Rows were quarantined (or otherwise lost) since the
                    # job finished: re-evaluate the holes through the
                    # store-backed evaluator instead of serving a 404 for
                    # a done job.  The healthy rows come straight from
                    # sqlite; only the gaps recompute, and the fresh
                    # estimates repopulate the store.
                    get_metrics().counter("serve.results_rebuilt").inc()
                    evaluator = job.spec.build_evaluator(self.store)

                    result = ExplorationResult(
                        [evaluator.evaluate(config) for config in configs]
                    )
            job.result = result
        return {
            "job_id": job.job_id,
            "schema": SERVE_SCHEMA,
            "estimates": result_to_json(result),
        }

    def _search_result(self, job: Job) -> ExplorationResult:
        """Reassemble a done search job's front after a restart.

        The persisted manifest's ``search.front`` names the front
        configurations; their rows come from the store (re-evaluating
        any quarantined hole through the store-backed evaluator).  With
        no usable manifest the search re-runs deterministically -- every
        row the original run evaluated is an L2 store hit, so the replay
        touches no backend unless rows were lost too.
        """
        manifest = self.store.load_manifest(job.job_id) or {}
        search = manifest.get("search") or {}
        configs: List[CacheConfig] = []
        if not search.get("partial"):
            try:
                configs = [
                    CacheConfig(*(int(v) for v in row["config"]))
                    for row in search.get("front", [])
                ]
            except (KeyError, TypeError, ValueError):
                configs = []
        if configs:
            eval_id = job.spec.eval_id()
            result = self.store.result_for(eval_id, configs)
            if result is not None:
                return result
            get_metrics().counter("serve.results_rebuilt").inc()
            evaluator = job.spec.build_evaluator(self.store)
            return ExplorationResult(
                [evaluator.evaluate(config) for config in configs]
            )
        get_metrics().counter("serve.results_rebuilt").inc()
        evaluator = job.spec.build_evaluator(self.store)
        run = run_search(evaluator, job.spec.configs(), job.spec.search)
        return run.result


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the service object."""

    daemon_threads = True

    def __init__(self, address, handler, service: ExplorationService) -> None:
        super().__init__(address, handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    @property
    def service(self) -> ExplorationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through the repro hierarchy instead of stderr.
        logging.getLogger("repro.serve.http").debug(
            "%s %s", self.address_string(), format % args
        )

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        # Remember the status for the per-endpoint response counters.
        self._status = code
        super().send_response(code, message)

    # ------------------------------------------------------------------
    # plumbing

    def _send_text(
        self, code: int, text: str, content_type: str
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        code: int,
        doc: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, **extra: Any) -> None:
        doc = {"error": message}
        headers = extra.pop("headers", None)
        doc.update(extra)
        self._send_json(code, doc, headers=headers)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw.decode())

    # ------------------------------------------------------------------
    # routing

    @staticmethod
    def _endpoint_label(parts: List[str]) -> str:
        """Bounded endpoint classification for metric names."""
        if not parts:
            return "root"
        if parts[0] in ("health", "healthz", "readyz", "metrics", "pareto"):
            return parts[0]
        if parts[0] == "jobs":
            if len(parts) == 1:
                return "jobs"
            if len(parts) == 2:
                return "job"
            if len(parts) == 3 and parts[2] in ("result", "events", "trace"):
                return parts[2]
        return "other"

    def _timed(self, route) -> None:
        """Run one routed request under the HTTP latency instruments."""
        self._status = 0
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        endpoint = self._endpoint_label(parts)
        started = time.perf_counter()
        try:
            route(parsed, parts)
        finally:
            elapsed = time.perf_counter() - started
            metrics = get_metrics()
            metrics.histogram("serve.http.request").observe(elapsed)
            metrics.histogram(
                "serve.http.request." + endpoint
            ).observe(elapsed)
            metrics.counter(
                "serve.http.responses.%s.%d" % (endpoint, self._status)
            ).inc()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._timed(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._timed(self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._timed(self._route_delete)

    def _route_get(self, parsed: Any, parts: List[str]) -> None:
        params = parse_qs(parsed.query)
        if parts == ["health"] or parts == ["healthz"]:
            if params.get("ready", ["0"])[0] in ("1", "true"):
                self._get_ready()
            else:
                # Liveness: the process answers, even mid-drain/startup.
                self._send_json(200, self.service.health())
        elif parts == ["readyz"]:
            self._get_ready()
        elif parts == ["metrics"]:
            self._get_metrics(params)
        elif parts == ["jobs"]:
            jobs = [job.to_json() for job in self.service.manager.list_jobs()]
            self._send_json(200, {"jobs": jobs})
        elif len(parts) == 2 and parts[0] == "jobs":
            self._get_job(parts[1], params)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._get_result(parts[1])
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            self._get_trace(parts[1])
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            self._stream_events(parts[1])
        else:
            self._error(404, f"no route for {parsed.path}")

    def _get_ready(self) -> None:
        """Readiness: 503 while draining or before recovery completes."""
        doc = self.service.health()
        self._send_json(200 if doc["ready"] else 503, doc)

    def _get_metrics(self, params: Dict[str, Any]) -> None:
        fmt = params.get("format", ["json"])[0]
        report = self.service.metrics_report()
        if fmt == "prometheus":
            self._send_text(
                200,
                render_prometheus(report.get("metrics", {})),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif fmt == "json":
            self._send_json(200, report)
        else:
            self._error(400, f"unknown metrics format {fmt!r}")

    def _route_post(self, parsed: Any, parts: List[str]) -> None:
        path = parsed.path.rstrip("/")
        if path not in ("/jobs", "/pareto"):
            self._error(404, f"no route for {parsed.path}")
            return
        try:
            doc = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad request body: {exc}")
            return
        client_id = self.headers.get("X-Repro-Client")
        try:
            job, coalesced = self.service.submit(
                doc,
                client_id=client_id,
                require_search=path == "/pareto",
            )
        except ServiceDrainingError as exc:
            self._error(503, str(exc), headers={"Retry-After": "10"})
            return
        except TenancyError as exc:
            # The body carries the *exact* per-client retry delay; the
            # header is its integer ceiling (HTTP grammar).
            self._error(
                429,
                str(exc),
                retry_after_s=exc.retry_after_s,
                client_id=exc.client_id,
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(exc.retry_after_s))
                    )
                },
            )
            return
        except QueueFullError as exc:
            self._error(
                429,
                str(exc),
                retry_after_s=exc.retry_after_s,
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(exc.retry_after_s))
                    )
                },
            )
            return
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._send_json(202, {"job": job.to_json(), "coalesced": coalesced})

    def _route_delete(self, parsed: Any, parts: List[str]) -> None:
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no route for {parsed.path}")
            return
        job, cancelled = self.service.manager.cancel(parts[1])
        if job is None:
            self._error(404, f"unknown job {parts[1]}")
            return
        if not cancelled and job.state != "cancelled":
            self._error(
                409,
                f"job {parts[1]} is already {job.state}",
                state=job.state,
            )
            return
        self._send_json(200, {"job": job.to_json(), "cancelled": cancelled})

    # ------------------------------------------------------------------
    # job endpoints

    def _get_job(self, job_id: str, params: Dict[str, Any]) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        wait = params.get("wait")
        if wait:
            try:
                timeout_s = min(float(wait[0]), 300.0)
            except ValueError:
                self._error(400, "wait must be a number of seconds")
                return
            job = self.service.manager.wait(job_id, timeout_s=timeout_s)
        assert job is not None
        doc = job.to_json()
        manifest = self.service.manager.store.load_manifest(job_id)
        if manifest is not None:
            doc["manifest"] = manifest
        self._send_json(200, {"job": doc})

    def _get_result(self, job_id: str) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        doc = self.service.job_result(job)
        if doc is None:
            self._error(
                409,
                f"job {job_id} is {job.state}; no result yet",
                state=job.state,
            )
            return
        self._send_json(200, doc)

    def _get_trace(self, job_id: str) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        doc = self.service.store.load_trace(job_id)
        if doc is None:
            if job.terminal:
                reason = (
                    "submitted without tracing"
                    if job.trace_id is None
                    else "no trace was recorded"
                )
                self._error(
                    404,
                    f"no trace for job {job_id} ({reason})",
                    state=job.state,
                )
            else:
                self._error(
                    409,
                    f"job {job_id} is {job.state}; trace not finalised yet",
                    state=job.state,
                )
            return
        self._send_json(200, doc)

    def _stream_events(self, job_id: str) -> None:
        # Replays the job's append-only snapshot history from index 0 --
        # every state/progress change since submission, in order -- so any
        # number of concurrent consumers see the identical, complete
        # sequence.  Terminate on the *written* snapshot, so the terminal
        # state is always the last line on the wire.
        manager = self.service.manager
        job = manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        cursor = 0
        while True:
            job, snapshots = manager.events_since(
                job_id, cursor, timeout_s=10.0
            )
            if job is None:
                return
            if not snapshots and job.terminal:
                # Defensive: history exhausted on a terminal job (the
                # terminal snapshot always closes the stream above).
                return
            for snapshot in snapshots:
                try:
                    self.wfile.write((json.dumps(snapshot) + "\n").encode())
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return
                cursor += 1
                # Front events carry no state; only job-record snapshots
                # can terminate the stream.
                if snapshot.get("state") in ("done", "failed", "cancelled"):
                    return


def make_server(
    host: str, port: int, service: ExplorationService
) -> ServeHTTPServer:
    """Bind the service on ``host:port`` (``port=0`` picks a free port)."""
    return ServeHTTPServer((host, port), _Handler, service)


def install_signal_handlers(
    httpd: ServeHTTPServer, service: ExplorationService
) -> None:
    """SIGTERM/SIGINT -> graceful drain, then shut the listener down.

    The handler returns immediately (drain happens on a helper thread so
    the serving loop keeps answering status polls while work finishes).
    Only callable from the main thread; the CLI uses it, tests do their
    own lifecycle management.
    """

    def _drain(signum: int, frame: Any) -> None:
        logger.info(
            "signal %d: draining (no new jobs; finishing in-flight work)",
            signum,
        )
        service.begin_drain()

        def _finish() -> None:
            service.stop(wait=True)
            httpd.shutdown()

        threading.Thread(
            target=_finish, name="repro-serve-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
