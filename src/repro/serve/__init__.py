"""repro.serve: exploration-as-a-service.

The service layer on top of :mod:`repro.engine`: concurrent clients
submit sweep requests to one long-lived process and share every
evaluation, fleet-wide, instead of re-running one-shot CLI sweeps.

* :mod:`repro.serve.store` -- :class:`ResultStore`, the disk-backed
  (sqlite, schema ``repro.store/1``) result tier under the in-memory
  :class:`~repro.engine.cache.EvalCache`: finished estimates are
  content-addressed by evaluator fingerprint + configuration, survive
  restarts, and are shared across processes.
  :class:`StoreBackedEvaluator` layers the store under any engine
  evaluator without changing sweep fingerprints.
* :mod:`repro.serve.jobs` -- :class:`JobSpec` (the canonical, hashable
  sweep request; an optional ``search`` section turns it into a
  multi-objective search job), :class:`JobManager` (bounded priority
  queue, request coalescing, admission control, persistence) and
  :class:`JobRunner` (checkpointed execution via
  :class:`~repro.engine.parallel.ParallelSweep`, or
  :func:`~repro.moo.driver.run_search` for search jobs -- either way a
  killed server resumes bit-identically).
* :mod:`repro.serve.tenancy` -- multi-tenant admission control:
  :class:`TenancyPolicy` / :class:`ClientPolicy` (per-client token-bucket
  rate limits, in-flight quotas, fair-share weights) consulted by the
  :class:`JobManager` before a job enters the queue.
* :mod:`repro.serve.server` -- the stdlib HTTP/JSON front end behind
  ``repro serve`` (``/health`` + ``/healthz``/``/readyz``, ``/metrics``,
  ``/jobs`` with progress streaming and ``DELETE`` cancellation,
  ``/pareto`` for multi-objective search jobs streaming ``repro.front/1``
  events per generation, 429 backpressure with per-client
  ``Retry-After``, graceful drain on SIGTERM).
* :mod:`repro.serve.client` -- :class:`ServeClient`, the Python client
  behind ``repro submit`` / ``repro jobs``.  Submissions mint a
  ``trace_id`` by default, so every job's ``repro.trace/1`` timeline is
  fetchable from ``GET /jobs/<id>/trace`` afterwards.
* :mod:`repro.serve.top` -- :func:`run_top`, the polling terminal
  dashboard behind ``repro top`` (queue depth, throughput, latency
  percentiles; see ``docs/OBSERVABILITY.md``).

Quickstart (server side)::

    from repro.serve import ExplorationService, make_server

    service = ExplorationService("results.db", "spool").start()
    make_server("127.0.0.1", 8000, service).serve_forever()
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    Job,
    JobManager,
    JobRunner,
    JobSpec,
    QueueFullError,
    ServiceDrainingError,
)
from repro.serve.server import (
    SERVE_SCHEMA,
    ExplorationService,
    ServeHTTPServer,
    install_signal_handlers,
    make_server,
)
from repro.serve.store import (
    STORE_SCHEMA,
    ResultStore,
    StoreBackedEvaluator,
    StoreError,
    StoreSchemaError,
    config_key,
    evaluator_fingerprint,
    open_store,
)
from repro.serve.tenancy import (
    ClientPolicy,
    QuotaExceededError,
    RateLimitedError,
    TenancyError,
    TenancyPolicy,
    TokenBucket,
)
from repro.serve.top import run_top

__all__ = [
    "ClientPolicy",
    "ExplorationService",
    "Job",
    "JobManager",
    "JobRunner",
    "JobSpec",
    "QueueFullError",
    "QuotaExceededError",
    "RateLimitedError",
    "ResultStore",
    "SERVE_SCHEMA",
    "STORE_SCHEMA",
    "ServeClient",
    "ServeError",
    "ServeHTTPServer",
    "ServiceDrainingError",
    "StoreBackedEvaluator",
    "StoreError",
    "StoreSchemaError",
    "TenancyError",
    "TenancyPolicy",
    "TokenBucket",
    "config_key",
    "evaluator_fingerprint",
    "install_signal_handlers",
    "make_server",
    "open_store",
    "run_top",
]
