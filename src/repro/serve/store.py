"""Persistent, cross-process result store (sqlite, schema ``repro.store/1``).

The in-memory :class:`~repro.engine.cache.EvalCache` dies with its
process, so every CLI invocation and every restarted service re-evaluates
configurations the fleet has already paid for.  :class:`ResultStore` is
the durable L2 tier underneath it: a single sqlite file holding finished
:class:`~repro.core.metrics.PerformanceEstimate` records, content-addressed
by the same fingerprint family :mod:`repro.engine.resilience` computes for
checkpoints -- an *evaluator fingerprint* (workload + backend + energy
model) plus the ``(T, L, S, B)`` configuration key.  Estimates round-trip
through :func:`~repro.engine.resilience.estimate_to_json`, whose floats
serialise via ``repr``, so a stored result is bit-identical to a freshly
computed one.

:class:`StoreBackedEvaluator` wraps any engine evaluator with the store:
``evaluate(config)`` first consults the store (an L2 hit skips the whole
pipeline, including the EvalCache), and writes every freshly computed
estimate back.  The wrapper delegates ``workload`` / ``backend`` /
``cache`` to the inner evaluator, so sweep fingerprints, checkpoint
journals and :class:`~repro.engine.parallel.ParallelSweep` chunking are
identical with or without the store; it also drops its sqlite connection
on pickling and lazily reopens it, so ``jobs=N`` workers each talk to the
store directly (WAL journaling makes that safe).

Store schema (``repro.store/1``)::

    meta(key TEXT PRIMARY KEY, value TEXT)        -- {"schema": "repro.store/1"}
    estimates(eval_id TEXT, config_key TEXT,      -- "T,L,S,B"
              estimate TEXT,                      -- estimate_to_json JSON
              created_s REAL,
              checksum TEXT,                      -- sha256 of the JSON text
              PRIMARY KEY (eval_id, config_key))
    jobs(job_id TEXT PRIMARY KEY, doc TEXT)       -- repro.serve job records
    manifests(job_id TEXT PRIMARY KEY, doc TEXT,
              checksum TEXT)                      -- repro.manifest/1 documents
    traces(job_id TEXT PRIMARY KEY, doc TEXT,
           checksum TEXT)                         -- repro.trace/1 timelines
    quarantine(source TEXT, row_key TEXT,         -- corrupt rows, preserved
               doc TEXT, reason TEXT, quarantined_s REAL)

The ``manifests`` and ``traces`` tables record provenance and timeline
documents of finished jobs *alongside* the keys, never inside them; the
``checksum`` columns and the ``quarantine`` table are equally additive:
the schema tag stays ``repro.store/1`` and every fingerprint is
byte-identical to what earlier versions wrote, so older stores open (and
gain the columns) in place -- legacy rows simply carry ``NULL`` checksums
until ``verify --repair`` backfills them.

Self-healing: every estimate/manifest/trace read re-hashes the row
against its checksum and re-parses it.  A corrupt row is moved to the
``quarantine`` table (never silently dropped -- the bytes are evidence),
counted under ``store.corruption.*``, and reported as a miss, so the
config is transparently re-evaluated instead of served poisoned.
:meth:`ResultStore.verify` scans the whole file on demand and, with
``repair=True``, backfills legacy checksums and rebuilds quarantined
estimates from the serve layer's checkpoint journals.  Writers take a
sqlite ``busy_timeout`` plus a bounded, seeded-backoff retry on
``SQLITE_BUSY`` so multi-process writers degrade to waiting, not errors.

Counters fed into the :mod:`repro.obs` registry: ``store.hits``,
``store.misses`` (reads) and ``store.puts`` (writes) -- the numbers the
coalescing acceptance tests assert on -- plus ``store.corruption.detected``
/ ``store.corruption.quarantined``, ``store.busy_retries`` and
``store.read_seconds`` / ``store.write_seconds`` latency histograms over
the estimate paths.  :meth:`ResultStore.stats` reports per-table row
counts and the sqlite file size, which the service republishes as gauges
on every ``/metrics`` snapshot.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.engine.resilience import (
    RetryPolicy,
    _evaluator_identity,
    estimate_from_json,
    estimate_to_json,
    load_checkpoint_estimates,
)
from repro.engine.result import ExplorationResult
from repro.obs.metrics import get_metrics

__all__ = [
    "STORE_SCHEMA",
    "ResultStore",
    "StoreBackedEvaluator",
    "StoreError",
    "StoreSchemaError",
    "config_key",
    "evaluator_fingerprint",
    "open_store",
]

logger = logging.getLogger(__name__)

STORE_SCHEMA = "repro.store/1"
_SCHEMA_PREFIX = "repro.store/"
_SCHEMA_VERSION = 1

_DDL = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS estimates ("
    " eval_id TEXT NOT NULL,"
    " config_key TEXT NOT NULL,"
    " estimate TEXT NOT NULL,"
    " created_s REAL NOT NULL,"
    " PRIMARY KEY (eval_id, config_key))",
    "CREATE TABLE IF NOT EXISTS jobs ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS manifests ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS traces ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS quarantine ("
    " source TEXT NOT NULL,"
    " row_key TEXT NOT NULL,"
    " doc TEXT,"
    " reason TEXT NOT NULL,"
    " quarantined_s REAL NOT NULL)",
)

#: Additive columns grafted onto pre-checksum stores in place (sqlite has
#: no ADD COLUMN IF NOT EXISTS; the duplicate-column error is the signal
#: the store is already current).
_MIGRATIONS = (
    "ALTER TABLE estimates ADD COLUMN checksum TEXT",
    "ALTER TABLE manifests ADD COLUMN checksum TEXT",
    "ALTER TABLE traces ADD COLUMN checksum TEXT",
)

#: SQLITE_BUSY / SQLITE_LOCKED surface as OperationalError with these
#: markers in the message; anything else is a real error.
_BUSY_MARKERS = ("locked", "busy")


def _checksum(text: str) -> str:
    """The per-row integrity hash: sha256 of the stored JSON text."""
    return hashlib.sha256(text.encode()).hexdigest()


class StoreError(ValueError):
    """The result store file could not be used."""


class StoreSchemaError(StoreError):
    """The store was written by a newer schema than this version reads."""


def config_key(config: CacheConfig) -> str:
    """The ``"T,L,S,B"`` row key of one configuration."""
    return f"{config.size},{config.line_size},{config.ways},{config.tiling}"


def evaluator_fingerprint(evaluator: Any) -> str:
    """SHA-256 identity of *what one configuration evaluates against*.

    Builds on the same textual identity
    :func:`repro.engine.resilience.sweep_fingerprint` hashes (workload key,
    backend name and parameters, Gray coding), extended with the energy
    model's constants -- two evaluators that would disagree on any
    estimate field must never share store rows.  Energy-model *subclasses*
    (e.g. :class:`~repro.energy.kamble_ghose.KambleGhoseModel`) additionally
    contribute their class name: they change ``E_cell`` without changing
    any constant, so sharing rows with the paper's model would poison the
    store.  The class qualifier is omitted for the base
    :class:`~repro.energy.model.EnergyModel`, keeping every fingerprint
    ever written by earlier versions byte-identical.
    """
    from repro.energy.model import EnergyModel

    model = getattr(evaluator, "energy_model", None)
    if model is None:
        model_id = None
    else:
        model_id = (
            repr(model.tech),
            repr(model.sram),
            model.subbanks,
            model.phased,
        )
        if type(model) is not EnergyModel:
            model_id = (type(model).__qualname__,) + model_id
    digest = hashlib.sha256()
    digest.update(_evaluator_identity(evaluator).encode())
    digest.update(repr(model_id).encode())
    return digest.hexdigest()


class ResultStore:
    """Disk-backed, cross-process store of finished estimates and jobs.

    One sqlite connection, shared across threads behind a lock; WAL
    journaling (best-effort -- some filesystems refuse it) lets several
    *processes* read and write the same file concurrently.  Writes use
    ``INSERT OR IGNORE``: estimates are deterministic for a given
    ``(eval_id, config)``, so the first writer wins and races are benign.
    """

    def __init__(self, path: str, timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout_s, check_same_thread=False
        )
        #: Bounded, deterministic backoff for SQLITE_BUSY writers; the
        #: path token desynchronises processes sharing one file.
        self._busy_retry = RetryPolicy(
            max_retries=5, backoff_base_s=0.01, backoff_cap_s=0.5
        )
        metrics = get_metrics()
        self._hit_counter = metrics.counter("store.hits")
        self._miss_counter = metrics.counter("store.misses")
        self._put_counter = metrics.counter("store.puts")
        self._read_hist = metrics.histogram("store.read_seconds")
        self._write_hist = metrics.histogram("store.write_seconds")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "PRAGMA busy_timeout = %d" % int(timeout_s * 1000)
            )
            self._migrate()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StoreError(
                f"{self.path} is not a {STORE_SCHEMA} store: {exc}"
            ) from exc

    def _migrate(self) -> None:
        """Create the schema on an empty database; verify it otherwise."""
        with self._lock, self._conn:
            for statement in _DDL:
                self._conn.execute(statement)
            for statement in _MIGRATIONS:
                try:
                    self._conn.execute(statement)
                except sqlite3.OperationalError as exc:
                    if "duplicate column" not in str(exc).lower():
                        raise
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (STORE_SCHEMA,),
                )
                return
        tag = row[0]
        if tag == STORE_SCHEMA:
            return
        version: Optional[int] = None
        if isinstance(tag, str) and tag.startswith(_SCHEMA_PREFIX):
            suffix = tag[len(_SCHEMA_PREFIX):]
            if suffix.isdigit():
                version = int(suffix)
        if version is not None and version > _SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{self.path} uses schema {tag}, newer than the "
                f"{STORE_SCHEMA} this version reads; upgrade repro or "
                "point --store at a fresh file"
            )
        raise StoreError(
            f"{self.path} is not a {STORE_SCHEMA} store (schema tag {tag!r})"
        )

    # ------------------------------------------------------------------
    # busy-retry and quarantine plumbing

    def _write(self, fn: Callable[[sqlite3.Connection], Any]) -> Any:
        """Run one write transaction, retrying bounded on SQLITE_BUSY.

        ``PRAGMA busy_timeout`` already makes sqlite wait inside one
        statement; this wrapper adds a seeded-backoff retry *around* the
        transaction for the cases the timeout cannot cover (deadlock
        aborts, writers stuck behind a WAL checkpoint).
        """
        attempt = 0
        while True:
            try:
                with self._lock, self._conn:
                    return fn(self._conn)
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if (
                    not any(marker in message for marker in _BUSY_MARKERS)
                    or attempt >= self._busy_retry.max_retries
                ):
                    raise
                get_metrics().counter("store.busy_retries").inc()
                logger.warning(
                    "store %s: write hit SQLITE_BUSY (attempt %d); "
                    "backing off",
                    self.path,
                    attempt + 1,
                )
                time.sleep(self._busy_retry.delay_s(attempt, self.path))
                attempt += 1

    def _quarantine(
        self,
        source: str,
        row_key: str,
        doc: Optional[str],
        reason: str,
        delete_sql: str,
        delete_params: Tuple[Any, ...],
    ) -> None:
        """Move one corrupt row aside (evidence preserved) and count it.

        The row is *moved*, not dropped: subsequent reads miss, so the
        configuration is transparently re-evaluated and re-stored, while
        the poisoned bytes stay inspectable in ``quarantine``.
        """
        metrics = get_metrics()
        metrics.counter("store.corruption.detected").inc()
        logger.warning(
            "store %s: quarantining corrupt %s row %s (%s)",
            self.path,
            source,
            row_key,
            reason,
        )

        def move(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO quarantine"
                " (source, row_key, doc, reason, quarantined_s)"
                " VALUES (?, ?, ?, ?, ?)",
                (source, row_key, doc, reason, time.time()),
            )
            conn.execute(delete_sql, delete_params)

        self._write(move)
        metrics.counter("store.corruption.quarantined").inc()

    def _estimate_from_row(
        self, eval_id: str, key: str, text: str, checksum: Optional[str]
    ) -> Optional[PerformanceEstimate]:
        """Verify + parse one estimate row; corrupt rows are quarantined.

        Legacy rows (``NULL`` checksum) skip the hash comparison but
        still must parse; ``verify --repair`` backfills their checksums.
        """
        reason = None
        if checksum is not None and _checksum(text) != checksum:
            reason = "checksum mismatch"
        else:
            try:
                return estimate_from_json(json.loads(text))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    IndexError) as exc:
                reason = f"unparsable estimate: {type(exc).__name__}"
        self._quarantine(
            "estimates",
            f"{eval_id}/{key}",
            text,
            reason,
            "DELETE FROM estimates WHERE eval_id = ? AND config_key = ?",
            (eval_id, key),
        )
        return None

    def _doc_from_row(
        self, table: str, job_id: str, text: str, checksum: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """Verify + parse one manifest/trace row (quarantining corrupt ones)."""
        reason = None
        if checksum is not None and _checksum(text) != checksum:
            reason = "checksum mismatch"
        else:
            try:
                doc = json.loads(text)
                if isinstance(doc, dict):
                    return doc
                reason = "document is not a JSON object"
            except json.JSONDecodeError as exc:
                reason = f"unparsable document: {type(exc).__name__}"
        self._quarantine(
            table,
            job_id,
            text,
            reason,
            "DELETE FROM {0} WHERE job_id = ?".format(table),
            (job_id,),
        )
        return None

    # ------------------------------------------------------------------
    # estimates

    def get(
        self, eval_id: str, config: CacheConfig
    ) -> Optional[PerformanceEstimate]:
        """The stored estimate for one configuration, or ``None``.

        A row that fails its checksum or no longer parses is quarantined
        and reported as a miss -- the caller re-evaluates and the fresh
        estimate repopulates the store.
        """
        started = time.perf_counter()
        with self._lock:
            row = self._conn.execute(
                "SELECT estimate, checksum FROM estimates"
                " WHERE eval_id = ? AND config_key = ?",
                (eval_id, config_key(config)),
            ).fetchone()
        self._read_hist.observe(time.perf_counter() - started)
        if row is not None:
            estimate = self._estimate_from_row(
                eval_id, config_key(config), row[0], row[1]
            )
            if estimate is not None:
                self._hit_counter.inc()
                return estimate
        self._miss_counter.inc()
        return None

    def get_many(
        self, eval_id: str, configs: Sequence[CacheConfig]
    ) -> Dict[CacheConfig, PerformanceEstimate]:
        """Every stored estimate among ``configs`` (missing ones omitted)."""
        started = time.perf_counter()
        found: Dict[CacheConfig, PerformanceEstimate] = {}
        corrupt: List[Tuple[CacheConfig, str, Optional[str]]] = []
        with self._lock:
            for config in configs:
                row = self._conn.execute(
                    "SELECT estimate, checksum FROM estimates"
                    " WHERE eval_id = ? AND config_key = ?",
                    (eval_id, config_key(config)),
                ).fetchone()
                if row is not None:
                    corrupt.append((config, row[0], row[1]))
        # Verification happens outside the row loop so quarantine writes
        # never interleave with the read cursor.
        for config, text, checksum in corrupt:
            estimate = self._estimate_from_row(
                eval_id, config_key(config), text, checksum
            )
            if estimate is not None:
                found[config] = estimate
        self._read_hist.observe(time.perf_counter() - started)
        hits = len(found)
        if hits:
            self._hit_counter.inc(hits)
        misses = len(configs) - hits
        if misses:
            self._miss_counter.inc(misses)
        return found

    def put(
        self, eval_id: str, config: CacheConfig, estimate: PerformanceEstimate
    ) -> None:
        """Durably record one estimate (first writer wins)."""
        self.put_many(eval_id, [(config, estimate)])

    def put_many(
        self,
        eval_id: str,
        pairs: Iterable[Tuple[CacheConfig, PerformanceEstimate]],
    ) -> None:
        """Durably record a batch of estimates in one transaction."""
        rows = []
        for config, estimate in pairs:
            text = json.dumps(estimate_to_json(estimate), sort_keys=True)
            rows.append(
                (
                    eval_id,
                    config_key(config),
                    text,
                    time.time(),
                    _checksum(text),
                )
            )
        if not rows:
            return
        started = time.perf_counter()
        self._write(
            lambda conn: conn.executemany(
                "INSERT OR IGNORE INTO estimates"
                " (eval_id, config_key, estimate, created_s, checksum)"
                " VALUES (?, ?, ?, ?, ?)",
                rows,
            )
        )
        self._write_hist.observe(time.perf_counter() - started)
        self._put_counter.inc(len(rows))

    def result_for(
        self, eval_id: str, configs: Sequence[CacheConfig]
    ) -> Optional[ExplorationResult]:
        """The full sweep result, or ``None`` unless *every* row is stored."""
        found = self.get_many(eval_id, configs)
        if len(found) != len(configs):
            return None
        return ExplorationResult([found[config] for config in configs])

    def count(self, eval_id: Optional[str] = None) -> int:
        """Stored estimates, overall or for one evaluator fingerprint."""
        with self._lock:
            if eval_id is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM estimates"
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM estimates WHERE eval_id = ?",
                    (eval_id,),
                ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # job persistence (used by repro.serve.jobs across restarts)

    def save_job(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist (or update) one job record as JSON."""
        text = json.dumps(doc, sort_keys=True)
        self._write(
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO jobs (job_id, doc) VALUES (?, ?)",
                (job_id, text),
            )
        )

    def load_jobs(self) -> List[Dict[str, Any]]:
        """Every persisted job record (insertion order is not guaranteed)."""
        with self._lock:
            rows = self._conn.execute("SELECT doc FROM jobs").fetchall()
        return [json.loads(row[0]) for row in rows]

    def delete_job(self, job_id: str) -> None:
        """Drop one persisted job record (idempotent)."""
        self._write(
            lambda conn: conn.execute(
                "DELETE FROM jobs WHERE job_id = ?", (job_id,)
            )
        )

    # ------------------------------------------------------------------
    # run manifests (repro.manifest/1 provenance, keyed by job)

    def save_manifest(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist one job's ``repro.manifest/1`` document."""
        text = json.dumps(doc, sort_keys=True)
        self._write(
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO manifests (job_id, doc, checksum)"
                " VALUES (?, ?, ?)",
                (job_id, text, _checksum(text)),
            )
        )

    def load_manifest(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's manifest, or ``None`` (corrupt rows are quarantined)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc, checksum FROM manifests WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return self._doc_from_row("manifests", job_id, row[0], row[1])

    # ------------------------------------------------------------------
    # job timelines (repro.trace/1 documents, keyed by job)

    def save_trace(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist one job's ``repro.trace/1`` timeline document."""
        text = json.dumps(doc, sort_keys=True)
        self._write(
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO traces (job_id, doc, checksum)"
                " VALUES (?, ?, ?)",
                (job_id, text, _checksum(text)),
            )
        )

    def load_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's timeline, or ``None`` (corrupt rows are quarantined)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc, checksum FROM traces WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return self._doc_from_row("traces", job_id, row[0], row[1])

    def stats(self) -> Dict[str, Any]:
        """Row counts per table plus the sqlite file size in bytes.

        The service refreshes its ``store.*`` gauges from this on every
        ``/metrics`` snapshot.
        """
        counts: Dict[str, Any] = {}
        with self._lock:
            for table in (
                "estimates", "jobs", "manifests", "traces", "quarantine"
            ):
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM {0}".format(table)
                ).fetchone()
                counts[table] = int(row[0])
        try:
            counts["file_bytes"] = os.path.getsize(self.path)
        except OSError:
            counts["file_bytes"] = 0
        return counts

    # ------------------------------------------------------------------
    # integrity scan / repair

    def verify(
        self, repair: bool = False, spool_dir: Optional[str] = None
    ) -> Dict[str, Any]:
        """Scan every checksummed table; optionally repair in place.

        Without ``repair`` this is a pure audit: corrupt rows are
        counted (and named in ``report["corrupt_rows"]``) but the file
        is untouched.  With ``repair``:

        * corrupt rows move to ``quarantine`` (the bytes survive as
          evidence);
        * legacy rows written before checksums gain one (backfill);
        * quarantined *estimates* are rebuilt from the serve layer's
          checkpoint journals in ``spool_dir`` -- every persisted job's
          spec names its journal, and journaled estimates re-insert
          under fresh checksums (first writer wins, so re-verified rows
          are never overwritten).
        """
        report: Dict[str, Any] = {
            "scanned": 0,
            "corrupt": 0,
            "quarantined": 0,
            "missing_checksum": 0,
            "checksums_added": 0,
            "rows_rebuilt": 0,
            "corrupt_rows": [],
            "clean": True,
        }
        self._verify_estimates(report, repair)
        for table in ("manifests", "traces"):
            self._verify_documents(table, report, repair)
        if repair and spool_dir is not None:
            self._rebuild_from_journals(report, spool_dir)
        # After a repair the corrupt rows are quarantined, not lurking.
        report["clean"] = report["corrupt"] == 0 or (
            repair and report["quarantined"] == report["corrupt"]
        )
        return report

    def _verify_estimates(self, report: Dict[str, Any], repair: bool) -> None:
        with self._lock:
            rows = self._conn.execute(
                "SELECT eval_id, config_key, estimate, checksum"
                " FROM estimates"
            ).fetchall()
        backfill: List[Tuple[str, str, str]] = []
        for eval_id, key, text, checksum in rows:
            report["scanned"] += 1
            reason = None
            if checksum is not None and _checksum(text) != checksum:
                reason = "checksum mismatch"
            else:
                try:
                    estimate_from_json(json.loads(text))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError, IndexError) as exc:
                    reason = f"unparsable estimate: {type(exc).__name__}"
            if reason is not None:
                report["corrupt"] += 1
                report["corrupt_rows"].append(
                    {"table": "estimates", "key": f"{eval_id}/{key}",
                     "reason": reason}
                )
                if repair:
                    self._quarantine(
                        "estimates", f"{eval_id}/{key}", text, reason,
                        "DELETE FROM estimates"
                        " WHERE eval_id = ? AND config_key = ?",
                        (eval_id, key),
                    )
                    report["quarantined"] += 1
                continue
            if checksum is None:
                report["missing_checksum"] += 1
                if repair:
                    backfill.append((_checksum(text), eval_id, key))
        if backfill:
            self._write(
                lambda conn: conn.executemany(
                    "UPDATE estimates SET checksum = ?"
                    " WHERE eval_id = ? AND config_key = ?",
                    backfill,
                )
            )
            report["checksums_added"] += len(backfill)

    def _verify_documents(
        self, table: str, report: Dict[str, Any], repair: bool
    ) -> None:
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, doc, checksum FROM {0}".format(table)
            ).fetchall()
        backfill: List[Tuple[str, str]] = []
        for job_id, text, checksum in rows:
            report["scanned"] += 1
            reason = None
            if checksum is not None and _checksum(text) != checksum:
                reason = "checksum mismatch"
            else:
                try:
                    json.loads(text)
                except json.JSONDecodeError as exc:
                    reason = f"unparsable document: {type(exc).__name__}"
            if reason is not None:
                report["corrupt"] += 1
                report["corrupt_rows"].append(
                    {"table": table, "key": job_id, "reason": reason}
                )
                if repair:
                    self._quarantine(
                        table, job_id, text, reason,
                        "DELETE FROM {0} WHERE job_id = ?".format(table),
                        (job_id,),
                    )
                    report["quarantined"] += 1
                continue
            if checksum is None:
                report["missing_checksum"] += 1
                if repair:
                    backfill.append((_checksum(text), job_id))
        if backfill:
            statement = (
                "UPDATE {0} SET checksum = ? WHERE job_id = ?".format(table)
            )
            self._write(
                lambda conn: conn.executemany(statement, backfill)
            )
            report["checksums_added"] += len(backfill)

    def _rebuild_from_journals(
        self, report: Dict[str, Any], spool_dir: str
    ) -> None:
        """Refill quarantined/missing estimates from checkpoint journals.

        Every persisted job record names its spec; the spec derives both
        the journal path (``<spool>/<spec_hash>.jsonl``) and the
        ``eval_id`` its rows belong under.  ``INSERT OR IGNORE`` keeps
        healthy rows authoritative -- only the holes fill in.
        """
        # Imported here: repro.serve.jobs imports this module at load time.
        from repro.serve.jobs import JobSpec

        for doc in self.load_jobs():
            try:
                spec = JobSpec.from_json(doc["spec"])
            except (KeyError, ValueError):
                continue
            journal = os.path.join(spool_dir, f"{spec.spec_hash}.jsonl")
            if not os.path.exists(journal):
                continue
            try:
                estimates = load_checkpoint_estimates(journal)
            except Exception as exc:
                logger.warning(
                    "verify: could not read journal %s: %s", journal, exc
                )
                continue
            before = self.count()
            self.put_many(
                spec.eval_id(),
                [(estimate.config, estimate) for estimate in estimates],
            )
            report["rows_rebuilt"] += self.count() - before

    def close(self) -> None:
        """Close the underlying connection (the file remains usable)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StoreBackedEvaluator:
    """An evaluator with the persistent store as its L2 result tier.

    ``evaluate(config)`` returns the stored estimate when one exists --
    skipping trace generation, miss measurement and the in-memory
    :class:`~repro.engine.cache.EvalCache` entirely -- and otherwise
    delegates to the wrapped evaluator and records the fresh estimate.
    Every delegated attribute (``workload``, ``backend``, ``cache``,
    ``energy_model``, ``gray_code``) mirrors the inner evaluator, so
    checkpoint fingerprints and sweep chunking do not change when the
    store is layered in.
    """

    def __init__(
        self,
        evaluator: Any,
        store: ResultStore,
        eval_id: Optional[str] = None,
    ) -> None:
        self.inner = evaluator
        self.eval_id = (
            eval_id if eval_id is not None else evaluator_fingerprint(evaluator)
        )
        self._store: Optional[ResultStore] = store
        self._store_path = store.path

    # The sqlite connection is process-local: when the evaluator crosses a
    # process boundary (ParallelSweep workers), each worker reopens the
    # same file lazily.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_store"] = None
        return state

    @property
    def store(self) -> ResultStore:
        """The persistent store (reopened after unpickling)."""
        if self._store is None:
            self._store = ResultStore(self._store_path)
        return self._store

    @property
    def workload(self):
        """The inner evaluator's workload (identity passthrough)."""
        return getattr(self.inner, "workload", None)

    @property
    def backend(self):
        """The inner evaluator's backend (identity passthrough)."""
        return getattr(self.inner, "backend", None)

    @property
    def energy_model(self):
        """The inner evaluator's energy model (identity passthrough)."""
        return getattr(self.inner, "energy_model", None)

    @property
    def gray_code(self):
        """The inner evaluator's Gray-coding flag (identity passthrough)."""
        return getattr(self.inner, "gray_code", None)

    @property
    def cache(self):
        """The inner evaluator's in-memory L1 cache."""
        return getattr(self.inner, "cache", None)

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """One configuration, from the store when possible."""
        stored = self.store.get(self.eval_id, config)
        if stored is not None:
            return stored
        estimate = self.inner.evaluate(config)
        self.store.put(self.eval_id, config, estimate)
        return estimate

    def evaluate_batch(
        self, configs: Any
    ) -> "list[PerformanceEstimate]":
        """Many configurations: stored rows first, one batch for the rest.

        Keeps the grouped cold path (one stack-filter pass per trace/line
        size group) intact underneath the store tier: stored estimates
        are returned as-is and only the misses reach the inner
        evaluator's ``evaluate_batch`` -- falling back to per-config
        evaluation when the inner evaluator has no batch method.  Fresh
        estimates are recorded exactly as :meth:`evaluate` records them.
        """
        configs = list(configs)
        results: "list[Optional[PerformanceEstimate]]" = [None] * len(configs)
        cold: "list[CacheConfig]" = []
        cold_at: "list[int]" = []
        for position, config in enumerate(configs):
            stored = self.store.get(self.eval_id, config)
            if stored is not None:
                results[position] = stored
            else:
                cold.append(config)
                cold_at.append(position)
        if cold:
            inner_batch = getattr(self.inner, "evaluate_batch", None)
            if inner_batch is not None:
                fresh = inner_batch(cold)
            else:
                fresh = [self.inner.evaluate(config) for config in cold]
            for position, config, estimate in zip(cold_at, cold, fresh):
                self.store.put(self.eval_id, config, estimate)
                results[position] = estimate
        return list(results)


def open_store(path: str) -> ResultStore:
    """Open (creating directories as needed) the store at ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    return ResultStore(path)
