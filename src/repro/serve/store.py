"""Persistent, cross-process result store (sqlite, schema ``repro.store/1``).

The in-memory :class:`~repro.engine.cache.EvalCache` dies with its
process, so every CLI invocation and every restarted service re-evaluates
configurations the fleet has already paid for.  :class:`ResultStore` is
the durable L2 tier underneath it: a single sqlite file holding finished
:class:`~repro.core.metrics.PerformanceEstimate` records, content-addressed
by the same fingerprint family :mod:`repro.engine.resilience` computes for
checkpoints -- an *evaluator fingerprint* (workload + backend + energy
model) plus the ``(T, L, S, B)`` configuration key.  Estimates round-trip
through :func:`~repro.engine.resilience.estimate_to_json`, whose floats
serialise via ``repr``, so a stored result is bit-identical to a freshly
computed one.

:class:`StoreBackedEvaluator` wraps any engine evaluator with the store:
``evaluate(config)`` first consults the store (an L2 hit skips the whole
pipeline, including the EvalCache), and writes every freshly computed
estimate back.  The wrapper delegates ``workload`` / ``backend`` /
``cache`` to the inner evaluator, so sweep fingerprints, checkpoint
journals and :class:`~repro.engine.parallel.ParallelSweep` chunking are
identical with or without the store; it also drops its sqlite connection
on pickling and lazily reopens it, so ``jobs=N`` workers each talk to the
store directly (WAL journaling makes that safe).

Store schema (``repro.store/1``)::

    meta(key TEXT PRIMARY KEY, value TEXT)        -- {"schema": "repro.store/1"}
    estimates(eval_id TEXT, config_key TEXT,      -- "T,L,S,B"
              estimate TEXT,                      -- estimate_to_json JSON
              created_s REAL,
              PRIMARY KEY (eval_id, config_key))
    jobs(job_id TEXT PRIMARY KEY, doc TEXT)       -- repro.serve job records
    manifests(job_id TEXT PRIMARY KEY, doc TEXT)  -- repro.manifest/1 documents
    traces(job_id TEXT PRIMARY KEY, doc TEXT)     -- repro.trace/1 timelines

The ``manifests`` and ``traces`` tables record provenance and timeline
documents of finished jobs *alongside* the keys, never inside them: the
schema tag stays ``repro.store/1`` and every fingerprint is byte-identical
to what earlier versions wrote, so older stores open (and gain the
tables) in place.

Counters fed into the :mod:`repro.obs` registry: ``store.hits``,
``store.misses`` (reads) and ``store.puts`` (writes) -- the numbers the
coalescing acceptance tests assert on -- plus ``store.read_seconds`` /
``store.write_seconds`` latency histograms over the estimate paths.
:meth:`ResultStore.stats` reports per-table row counts and the sqlite
file size, which the service republishes as gauges on every ``/metrics``
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.engine.resilience import (
    _evaluator_identity,
    estimate_from_json,
    estimate_to_json,
)
from repro.engine.result import ExplorationResult
from repro.obs.metrics import get_metrics

__all__ = [
    "STORE_SCHEMA",
    "ResultStore",
    "StoreBackedEvaluator",
    "StoreError",
    "StoreSchemaError",
    "config_key",
    "evaluator_fingerprint",
    "open_store",
]

STORE_SCHEMA = "repro.store/1"
_SCHEMA_PREFIX = "repro.store/"
_SCHEMA_VERSION = 1

_DDL = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS estimates ("
    " eval_id TEXT NOT NULL,"
    " config_key TEXT NOT NULL,"
    " estimate TEXT NOT NULL,"
    " created_s REAL NOT NULL,"
    " PRIMARY KEY (eval_id, config_key))",
    "CREATE TABLE IF NOT EXISTS jobs ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS manifests ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS traces ("
    " job_id TEXT PRIMARY KEY, doc TEXT NOT NULL)",
)


class StoreError(ValueError):
    """The result store file could not be used."""


class StoreSchemaError(StoreError):
    """The store was written by a newer schema than this version reads."""


def config_key(config: CacheConfig) -> str:
    """The ``"T,L,S,B"`` row key of one configuration."""
    return f"{config.size},{config.line_size},{config.ways},{config.tiling}"


def evaluator_fingerprint(evaluator: Any) -> str:
    """SHA-256 identity of *what one configuration evaluates against*.

    Builds on the same textual identity
    :func:`repro.engine.resilience.sweep_fingerprint` hashes (workload key,
    backend name and parameters, Gray coding), extended with the energy
    model's constants -- two evaluators that would disagree on any
    estimate field must never share store rows.  Energy-model *subclasses*
    (e.g. :class:`~repro.energy.kamble_ghose.KambleGhoseModel`) additionally
    contribute their class name: they change ``E_cell`` without changing
    any constant, so sharing rows with the paper's model would poison the
    store.  The class qualifier is omitted for the base
    :class:`~repro.energy.model.EnergyModel`, keeping every fingerprint
    ever written by earlier versions byte-identical.
    """
    from repro.energy.model import EnergyModel

    model = getattr(evaluator, "energy_model", None)
    if model is None:
        model_id = None
    else:
        model_id = (
            repr(model.tech),
            repr(model.sram),
            model.subbanks,
            model.phased,
        )
        if type(model) is not EnergyModel:
            model_id = (type(model).__qualname__,) + model_id
    digest = hashlib.sha256()
    digest.update(_evaluator_identity(evaluator).encode())
    digest.update(repr(model_id).encode())
    return digest.hexdigest()


class ResultStore:
    """Disk-backed, cross-process store of finished estimates and jobs.

    One sqlite connection, shared across threads behind a lock; WAL
    journaling (best-effort -- some filesystems refuse it) lets several
    *processes* read and write the same file concurrently.  Writes use
    ``INSERT OR IGNORE``: estimates are deterministic for a given
    ``(eval_id, config)``, so the first writer wins and races are benign.
    """

    def __init__(self, path: str, timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout_s, check_same_thread=False
        )
        metrics = get_metrics()
        self._hit_counter = metrics.counter("store.hits")
        self._miss_counter = metrics.counter("store.misses")
        self._put_counter = metrics.counter("store.puts")
        self._read_hist = metrics.histogram("store.read_seconds")
        self._write_hist = metrics.histogram("store.write_seconds")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._migrate()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StoreError(
                f"{self.path} is not a {STORE_SCHEMA} store: {exc}"
            ) from exc

    def _migrate(self) -> None:
        """Create the schema on an empty database; verify it otherwise."""
        with self._lock, self._conn:
            for statement in _DDL:
                self._conn.execute(statement)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (STORE_SCHEMA,),
                )
                return
        tag = row[0]
        if tag == STORE_SCHEMA:
            return
        version: Optional[int] = None
        if isinstance(tag, str) and tag.startswith(_SCHEMA_PREFIX):
            suffix = tag[len(_SCHEMA_PREFIX):]
            if suffix.isdigit():
                version = int(suffix)
        if version is not None and version > _SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{self.path} uses schema {tag}, newer than the "
                f"{STORE_SCHEMA} this version reads; upgrade repro or "
                "point --store at a fresh file"
            )
        raise StoreError(
            f"{self.path} is not a {STORE_SCHEMA} store (schema tag {tag!r})"
        )

    # ------------------------------------------------------------------
    # estimates

    def get(
        self, eval_id: str, config: CacheConfig
    ) -> Optional[PerformanceEstimate]:
        """The stored estimate for one configuration, or ``None``."""
        started = time.perf_counter()
        with self._lock:
            row = self._conn.execute(
                "SELECT estimate FROM estimates"
                " WHERE eval_id = ? AND config_key = ?",
                (eval_id, config_key(config)),
            ).fetchone()
        self._read_hist.observe(time.perf_counter() - started)
        if row is None:
            self._miss_counter.inc()
            return None
        self._hit_counter.inc()
        return estimate_from_json(json.loads(row[0]))

    def get_many(
        self, eval_id: str, configs: Sequence[CacheConfig]
    ) -> Dict[CacheConfig, PerformanceEstimate]:
        """Every stored estimate among ``configs`` (missing ones omitted)."""
        started = time.perf_counter()
        found: Dict[CacheConfig, PerformanceEstimate] = {}
        with self._lock:
            for config in configs:
                row = self._conn.execute(
                    "SELECT estimate FROM estimates"
                    " WHERE eval_id = ? AND config_key = ?",
                    (eval_id, config_key(config)),
                ).fetchone()
                if row is not None:
                    found[config] = estimate_from_json(json.loads(row[0]))
        self._read_hist.observe(time.perf_counter() - started)
        hits = len(found)
        if hits:
            self._hit_counter.inc(hits)
        misses = len(configs) - hits
        if misses:
            self._miss_counter.inc(misses)
        return found

    def put(
        self, eval_id: str, config: CacheConfig, estimate: PerformanceEstimate
    ) -> None:
        """Durably record one estimate (first writer wins)."""
        self.put_many(eval_id, [(config, estimate)])

    def put_many(
        self,
        eval_id: str,
        pairs: Iterable[Tuple[CacheConfig, PerformanceEstimate]],
    ) -> None:
        """Durably record a batch of estimates in one transaction."""
        rows = [
            (
                eval_id,
                config_key(config),
                json.dumps(estimate_to_json(estimate), sort_keys=True),
                time.time(),
            )
            for config, estimate in pairs
        ]
        if not rows:
            return
        started = time.perf_counter()
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO estimates"
                " (eval_id, config_key, estimate, created_s)"
                " VALUES (?, ?, ?, ?)",
                rows,
            )
        self._write_hist.observe(time.perf_counter() - started)
        self._put_counter.inc(len(rows))

    def result_for(
        self, eval_id: str, configs: Sequence[CacheConfig]
    ) -> Optional[ExplorationResult]:
        """The full sweep result, or ``None`` unless *every* row is stored."""
        found = self.get_many(eval_id, configs)
        if len(found) != len(configs):
            return None
        return ExplorationResult([found[config] for config in configs])

    def count(self, eval_id: Optional[str] = None) -> int:
        """Stored estimates, overall or for one evaluator fingerprint."""
        with self._lock:
            if eval_id is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM estimates"
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM estimates WHERE eval_id = ?",
                    (eval_id,),
                ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # job persistence (used by repro.serve.jobs across restarts)

    def save_job(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist (or update) one job record as JSON."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs (job_id, doc) VALUES (?, ?)",
                (job_id, json.dumps(doc, sort_keys=True)),
            )

    def load_jobs(self) -> List[Dict[str, Any]]:
        """Every persisted job record (insertion order is not guaranteed)."""
        with self._lock:
            rows = self._conn.execute("SELECT doc FROM jobs").fetchall()
        return [json.loads(row[0]) for row in rows]

    def delete_job(self, job_id: str) -> None:
        """Drop one persisted job record (idempotent)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM jobs WHERE job_id = ?", (job_id,))

    # ------------------------------------------------------------------
    # run manifests (repro.manifest/1 provenance, keyed by job)

    def save_manifest(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist one job's ``repro.manifest/1`` document."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO manifests (job_id, doc)"
                " VALUES (?, ?)",
                (job_id, json.dumps(doc, sort_keys=True)),
            )

    def load_manifest(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's manifest, or ``None`` when none was recorded."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc FROM manifests WHERE job_id = ?", (job_id,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    # ------------------------------------------------------------------
    # job timelines (repro.trace/1 documents, keyed by job)

    def save_trace(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Persist one job's ``repro.trace/1`` timeline document."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO traces (job_id, doc) VALUES (?, ?)",
                (job_id, json.dumps(doc, sort_keys=True)),
            )

    def load_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's trace timeline, or ``None`` when none was recorded."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc FROM traces WHERE job_id = ?", (job_id,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def stats(self) -> Dict[str, Any]:
        """Row counts per table plus the sqlite file size in bytes.

        The service refreshes its ``store.*`` gauges from this on every
        ``/metrics`` snapshot.
        """
        counts: Dict[str, Any] = {}
        with self._lock:
            for table in ("estimates", "jobs", "manifests", "traces"):
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM {0}".format(table)
                ).fetchone()
                counts[table] = int(row[0])
        try:
            counts["file_bytes"] = os.path.getsize(self.path)
        except OSError:
            counts["file_bytes"] = 0
        return counts

    def close(self) -> None:
        """Close the underlying connection (the file remains usable)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StoreBackedEvaluator:
    """An evaluator with the persistent store as its L2 result tier.

    ``evaluate(config)`` returns the stored estimate when one exists --
    skipping trace generation, miss measurement and the in-memory
    :class:`~repro.engine.cache.EvalCache` entirely -- and otherwise
    delegates to the wrapped evaluator and records the fresh estimate.
    Every delegated attribute (``workload``, ``backend``, ``cache``,
    ``energy_model``, ``gray_code``) mirrors the inner evaluator, so
    checkpoint fingerprints and sweep chunking do not change when the
    store is layered in.
    """

    def __init__(
        self,
        evaluator: Any,
        store: ResultStore,
        eval_id: Optional[str] = None,
    ) -> None:
        self.inner = evaluator
        self.eval_id = (
            eval_id if eval_id is not None else evaluator_fingerprint(evaluator)
        )
        self._store: Optional[ResultStore] = store
        self._store_path = store.path

    # The sqlite connection is process-local: when the evaluator crosses a
    # process boundary (ParallelSweep workers), each worker reopens the
    # same file lazily.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_store"] = None
        return state

    @property
    def store(self) -> ResultStore:
        """The persistent store (reopened after unpickling)."""
        if self._store is None:
            self._store = ResultStore(self._store_path)
        return self._store

    @property
    def workload(self):
        """The inner evaluator's workload (identity passthrough)."""
        return getattr(self.inner, "workload", None)

    @property
    def backend(self):
        """The inner evaluator's backend (identity passthrough)."""
        return getattr(self.inner, "backend", None)

    @property
    def energy_model(self):
        """The inner evaluator's energy model (identity passthrough)."""
        return getattr(self.inner, "energy_model", None)

    @property
    def gray_code(self):
        """The inner evaluator's Gray-coding flag (identity passthrough)."""
        return getattr(self.inner, "gray_code", None)

    @property
    def cache(self):
        """The inner evaluator's in-memory L1 cache."""
        return getattr(self.inner, "cache", None)

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """One configuration, from the store when possible."""
        stored = self.store.get(self.eval_id, config)
        if stored is not None:
            return stored
        estimate = self.inner.evaluate(config)
        self.store.put(self.eval_id, config, estimate)
        return estimate


def open_store(path: str) -> ResultStore:
    """Open (creating directories as needed) the store at ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    return ResultStore(path)
