"""Multi-tenant admission control: client identity, rate limits, quotas.

The exploration service is only worth running when many clients share
one result store, and shared queues invite abuse: a population-based
searcher can flood thousands of small jobs and starve every other
tenant.  This module is the admission layer the
:class:`~repro.serve.jobs.JobManager` consults *before* a job enters the
queue:

* :func:`validate_client_id` -- client names ride on every submission
  (the ``X-Repro-Client`` header or the ``client_id`` document field)
  and become metric label suffixes, so they are restricted to the same
  1-64 character ``[A-Za-z0-9_-]`` alphabet as trace ids.  Absent
  identity maps to :data:`DEFAULT_CLIENT` rather than being rejected:
  single-user deployments should not need ceremony.
* :class:`TokenBucket` -- the classic refill-at-rate bucket with an
  injectable clock, so tests drive admission decisions deterministically
  without sleeping.  ``acquire`` either takes a token or reports exactly
  how long until one is available (the ``Retry-After`` the client sees).
* :class:`ClientPolicy` / :class:`TenancyPolicy` -- the knobs: steady
  rate (jobs/second), burst (bucket depth), in-flight quota (queued +
  running jobs per client) and fair-share weight (consumed by the
  deficit-round-robin dequeue in :mod:`repro.serve.jobs`).  The default
  policy is *unlimited*: tenancy is opt-in and a bare service behaves
  exactly as it always has.

Rejections raise typed errors carrying ``retry_after_s`` so the HTTP
layer can answer 429 with an accurate per-client ``Retry-After`` instead
of a blind guess, and they are counted under ``serve.quota.*`` in both
``/metrics`` formats.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.metrics import get_metrics

__all__ = [
    "DEFAULT_CLIENT",
    "ClientPolicy",
    "QuotaExceededError",
    "RateLimitedError",
    "TenancyError",
    "TenancyPolicy",
    "TokenBucket",
    "validate_client_id",
]

#: Submissions with no identity are pooled under one tenant rather than
#: rejected; a bare single-user deployment never has to name itself.
DEFAULT_CLIENT = "anonymous"

_CLIENT_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def validate_client_id(client_id: Optional[str]) -> str:
    """Normalise and validate a client identity; ``None`` -> anonymous.

    Raises :class:`ValueError` on anything outside 1-64 characters of
    ``[A-Za-z0-9_-]`` -- client ids become metric names and file-free
    sqlite keys, so the alphabet is deliberately narrow.
    """
    if client_id is None:
        return DEFAULT_CLIENT
    if not isinstance(client_id, str) or not _CLIENT_ID_RE.match(client_id):
        raise ValueError(
            "client_id must be 1-64 characters of [A-Za-z0-9_-], "
            f"got {client_id!r}"
        )
    return client_id


class TenancyError(RuntimeError):
    """An admission-control rejection (maps to HTTP 429)."""

    def __init__(
        self, message: str, client_id: str, retry_after_s: float
    ) -> None:
        super().__init__(message)
        self.client_id = client_id
        self.retry_after_s = max(0.0, float(retry_after_s))


class RateLimitedError(TenancyError):
    """The client's token bucket is empty; retry after the refill."""


class QuotaExceededError(TenancyError):
    """The client's in-flight quota is full; retry after jobs finish."""


class TokenBucket:
    """Token bucket: ``rate`` tokens/second refill, ``burst`` capacity.

    The bucket starts full (a quiet client gets its whole burst at
    once).  ``acquire`` consumes one token when available and returns
    ``0.0``; otherwise it returns the exact seconds until the next token
    accrues -- the caller's ``Retry-After``.  The clock is injectable so
    admission tests are deterministic.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (omit for unlimited)")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self) -> float:
        """Take one token (return 0.0) or the seconds until one exists."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class ClientPolicy:
    """Admission limits for one client (``None`` means unlimited).

    ``rate``/``burst`` shape the token bucket; ``max_inflight`` caps
    queued-plus-running jobs; ``weight`` scales the client's share of the
    deficit-round-robin dequeue (2.0 drains twice as fast as 1.0 under
    contention and changes nothing when the queue is quiet).
    """

    rate: Optional[float] = None
    burst: int = 10
    max_inflight: Optional[int] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None)")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


class TenancyPolicy:
    """Per-client admission policy with a default for unknown clients.

    ``default`` applies to every client without an explicit entry in
    ``overrides``.  The zero-argument construction is fully unlimited --
    existing single-tenant deployments and tests see no behaviour change
    until limits are configured.
    """

    def __init__(
        self,
        default: Optional[ClientPolicy] = None,
        overrides: Optional[Dict[str, ClientPolicy]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default if default is not None else ClientPolicy()
        self.overrides = dict(overrides or {})
        for name in self.overrides:
            validate_client_id(name)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def policy_for(self, client_id: str) -> ClientPolicy:
        return self.overrides.get(client_id, self.default)

    def weight(self, client_id: str) -> float:
        return self.policy_for(client_id).weight

    def check_rate(self, client_id: str) -> None:
        """Charge one submission to the client's bucket or raise 429."""
        policy = self.policy_for(client_id)
        if policy.rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None or bucket.rate != policy.rate:
                bucket = TokenBucket(
                    policy.rate, float(policy.burst), clock=self._clock
                )
                self._buckets[client_id] = bucket
        retry_after = bucket.acquire()
        if retry_after > 0.0:
            get_metrics().counter("serve.quota.rate_limited").inc()
            get_metrics().counter(
                f"serve.quota.rate_limited.{client_id}"
            ).inc()
            raise RateLimitedError(
                f"client {client_id} exceeded its rate limit "
                f"({policy.rate:g} jobs/s, burst {policy.burst}); "
                f"retry in {retry_after:.3f}s",
                client_id,
                retry_after,
            )

    def check_inflight(
        self, client_id: str, inflight: int, retry_hint_s: float
    ) -> None:
        """Raise when admitting one more job would breach the quota."""
        policy = self.policy_for(client_id)
        if policy.max_inflight is None or inflight < policy.max_inflight:
            return
        get_metrics().counter("serve.quota.inflight_rejected").inc()
        get_metrics().counter(
            f"serve.quota.inflight_rejected.{client_id}"
        ).inc()
        raise QuotaExceededError(
            f"client {client_id} already has {inflight} jobs in flight "
            f"(quota {policy.max_inflight}); retry after some finish",
            client_id,
            retry_hint_s,
        )
