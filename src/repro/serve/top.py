"""``repro top``: a live terminal dashboard for a running service.

Polls ``GET /metrics`` and ``GET /jobs`` on an interval and redraws one
screenful: queue state, jobs in flight, throughput (configs/s from
counter deltas between consecutive samples), store hit rate, and the
latency percentile table the log-bucketed histograms make cheap to
serve.  Pure stdlib, pure text: the only terminal control used is an
ANSI home+clear when stdout is a tty, so output also pipes cleanly
(``--iterations 1`` gives a one-shot snapshot).

The data path is split for testability: :func:`collect` pulls one
sample through a :class:`~repro.serve.client.ServeClient`, and
:func:`render` is a pure function from (sample, previous sample) to the
screen text -- the tests drive it with canned samples, no server needed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, TextIO

from repro.serve.client import ServeClient, ServeError

__all__ = ["collect", "render", "run_top"]

#: Histogram instruments shown in the latency table, in display order.
_LATENCY_ROWS = (
    ("http request", "serve.http.request"),
    ("queue wait", "serve.queue.wait_seconds"),
    ("job", "serve.job_seconds"),
    ("eval", "engine.eval"),
    ("chunk", "engine.chunk_seconds"),
    ("store read", "store.read_seconds"),
    ("store write", "store.write_seconds"),
)

_CLEAR = "\x1b[H\x1b[2J"


def collect(client: ServeClient) -> Dict[str, Any]:
    """One dashboard sample: health + metrics report + job list."""
    return {
        "at": time.monotonic(),
        "health": client.health(),
        "report": client.metrics(),
        "jobs": client.jobs(),
    }


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:7.2f}ms"
    return f"{value * 1e6:7.1f}us"


def _counter(sample: Dict[str, Any], name: str) -> float:
    return (
        sample["report"]
        .get("metrics", {})
        .get("counters", {})
        .get(name, 0)
    )


def _rate(
    sample: Dict[str, Any], previous: Optional[Dict[str, Any]], name: str
) -> Optional[float]:
    """Per-second delta of one counter between consecutive samples."""
    if previous is None:
        return None
    elapsed = sample["at"] - previous["at"]
    if elapsed <= 0:
        return None
    return max(0.0, _counter(sample, name) - _counter(previous, name)) / elapsed


def render(
    sample: Dict[str, Any], previous: Optional[Dict[str, Any]] = None
) -> str:
    """The dashboard screen for one sample (pure; no I/O, no ANSI)."""
    health = sample.get("health", {})
    report = sample.get("report", {})
    jobs: List[Dict[str, Any]] = sample.get("jobs", [])
    metrics = report.get("metrics", {})
    lines = []

    states: Dict[str, int] = {}
    for job in jobs:
        states[job["state"]] = states.get(job["state"], 0) + 1
    queued = states.get("queued", 0)
    running = states.get("running", 0)
    lines.append(
        "repro top -- service %s (v%s)  queue=%d running=%d done=%d"
        " failed=%d cancelled=%d"
        % (
            health.get("status", "?"),
            health.get("version", "?"),
            queued,
            running,
            states.get("done", 0),
            states.get("failed", 0),
            states.get("cancelled", 0),
        )
    )

    rate = _rate(sample, previous, "engine.configs_evaluated")
    hits = _counter(sample, "store.hits")
    misses = _counter(sample, "store.misses")
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.3f}" if lookups else "-"
    lines.append(
        "throughput: %s configs/s   store hit rate: %s (%d lookups)   "
        "coalesced: %d"
        % (
            f"{rate:.1f}" if rate is not None else "-",
            hit_rate,
            lookups,
            _counter(sample, "serve.jobs_coalesced"),
        )
    )
    lines.append("")

    histograms = metrics.get("histograms", {})
    lines.append(
        f"{'latency':>12s} {'count':>8s} {'p50':>10s} {'p95':>10s} "
        f"{'p99':>10s} {'max':>10s}"
    )
    for label, name in _LATENCY_ROWS:
        summary = histograms.get(name)
        if not summary or not summary.get("count"):
            continue
        lines.append(
            f"{label:>12s} {summary['count']:>8d} "
            f"{_fmt_seconds(summary.get('p50', 0.0)):>10s} "
            f"{_fmt_seconds(summary.get('p95', 0.0)):>10s} "
            f"{_fmt_seconds(summary.get('p99', 0.0)):>10s} "
            f"{_fmt_seconds(summary.get('max', 0.0)):>10s}"
        )
    lines.append("")

    active = [job for job in jobs if job["state"] in ("queued", "running")]
    lines.append(
        f"{'job':>22s} {'state':>8s} {'progress':>10s} {'kernel':>10s}"
    )
    for job in active[:10] or jobs[:5]:
        progress = f"{job['done_configs']}/{job['total_configs']}"
        lines.append(
            f"{job['job_id']:>22s} {job['state']:>8s} {progress:>10s} "
            f"{job['spec']['kernel']:>10s}"
        )
    if not jobs:
        lines.append("  (no jobs yet)")
    return "\n".join(lines) + "\n"


def run_top(
    client: ServeClient,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Poll and redraw until interrupted (or for ``iterations`` rounds)."""
    import sys

    stream = stream if stream is not None else sys.stdout
    clear = _CLEAR if stream.isatty() else ""
    previous: Optional[Dict[str, Any]] = None
    count = 0
    try:
        while iterations is None or count < iterations:
            try:
                sample = collect(client)
            except ServeError as exc:
                stream.write(f"error: {exc}\n")
                stream.flush()
                return 1
            stream.write(clear + render(sample, previous))
            stream.flush()
            previous = sample
            count += 1
            if iterations is None or count < iterations:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
