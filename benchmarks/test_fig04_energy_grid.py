"""Figure 4: Compress -- energy over the full (T, L) grid at Em = 4.95 nJ,
and the bounded selections the paper walks through.

Paper claims: the minimum-energy configuration is C16L4; the minimum-time
configuration has a large cache and long lines; adding a cycle bound moves
the minimum-energy choice to a larger cache; adding an energy bound keeps a
fast configuration feasible.
"""

from conftest import FIGURE_GRID

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.core.selection import select_configuration
from repro.kernels import make_compress


def run_grid():
    explorer = MemExplorer(make_compress())
    return explorer.explore(configs=FIGURE_GRID)


def test_fig04_energy_grid(benchmark, report):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        (e.config.size, e.config.line_size, e.miss_rate, round(e.cycles),
         round(e.energy_nj))
        for e in result
    ]

    min_e = result.min_energy()
    min_t = result.min_cycles()
    # The paper bounds: 5,000 cycles and 5,500 nJ.  Our calibrated scales
    # put the interesting knees at the same order of magnitude, so the
    # literal bounds remain meaningful.
    bounded_energy = select_configuration(
        result.estimates, "energy", cycle_bound=result[0].events * 2.0
    )
    bounded_time = select_configuration(
        result.estimates, "cycles", energy_bound=min_e.energy_nj * 2.0
    )
    rows.append(("--", "--", 0.0, "min-energy", min_e.config.label()))
    rows.append(("--", "--", 0.0, "min-time", min_t.config.label()))
    rows.append(("--", "--", 0.0, "minE@cyc-bound", bounded_energy.chosen.config.label()))
    rows.append(("--", "--", 0.0, "minT@E-bound", bounded_time.chosen.config.label()))
    report(
        "fig04_energy_grid",
        "Figure 4 -- Compress: energy vs cache/line size (Em=4.95) and "
        "bounded selections",
        ("T", "L", "miss rate", "cycles", "energy nJ"),
        rows,
    )

    assert min_e.config == CacheConfig(16, 4)  # the paper's C16L4
    assert min_t.config.size >= 64 and min_t.config.line_size >= 32
    assert min_e.config != min_t.config
    # A tight cycle bound forces a larger (faster) cache than C16L4.
    assert bounded_energy.chosen.config != min_e.config
    assert bounded_energy.chosen.cycles <= result[0].events * 2.0
    # An energy bound still admits a configuration much faster than C16L4.
    assert bounded_time.chosen.cycles < min_e.cycles / 2
