"""Ablation: tornado sensitivity of the Compress decision.

Which of the Section 2.3 constants does the C16L4 choice actually hinge
on?  Each parameter is halved and doubled, the exploration re-run, and the
energy swing at the nominal winner recorded.  Expected (and measured)
tornado: Em dominates by an order of magnitude, the cell-array constant is
second, the decoder term is noise -- exactly the prioritisation the
paper's simplified model encodes.
"""

from conftest import FIGURE_GRID

from repro.core.sensitivity import tornado
from repro.kernels import make_compress


def run_tornado():
    return tornado(make_compress(), FIGURE_GRID)


def test_ablation_tornado(benchmark, report):
    rows = benchmark.pedantic(run_tornado, rounds=1, iterations=1)
    report(
        "ablation_tornado",
        "Ablation -- tornado sensitivity of Compress's minimum-energy choice",
        ("parameter", "swing", "E @ 0.5x", "E @ 2x", "winner moves"),
        [
            (r.parameter, round(r.swing, 4), round(r.low_energy),
             round(r.high_energy), r.winner_changes)
            for r in rows
        ],
    )

    by_name = {r.parameter: r for r in rows}
    # Em is the dominant axis and the only first-order decision driver;
    # the beta (cell-array) axis is the second-order one.
    assert rows[0].parameter == "Em (main memory)"
    assert abs(by_name["Em (main memory)"].swing) > 0.5
    assert abs(by_name["alpha (decoder)"].swing) < 0.01
    assert not by_name["gamma (I/O pads)"].winner_changes
    assert not by_name["alpha (decoder)"].winner_changes
