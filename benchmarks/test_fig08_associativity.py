"""Figure 8: miss rate, cycles and energy vs set associativity (1..8) at
C64L8, tiling size 1, Em = 4.95 nJ.

Paper claims: raising the associativity reduces the miss rate where
conflicts exist, and "greater associativity can come at the cost of
increased hit time" -- plus the Section 4.3 caveat that for large caches
the cycle and energy values "do not necessarily decrease".  The sweep runs
on the dense (unoptimized) layout, where conflicts are present for the
associativity to absorb.
"""

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import paper_kernels

WAYS = (1, 2, 4, 8)


def run_sweep():
    table = {}
    for kernel in paper_kernels():
        explorer = MemExplorer(kernel, optimize_layout=False)
        table[kernel.name] = [
            explorer.evaluate(CacheConfig(64, 8, s, 1)) for s in WAYS
        ]
    return table


def test_fig08_associativity(benchmark, report):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name, estimates in table.items():
        for est in estimates:
            rows.append((name, f"S{est.config.ways}", est.miss_rate,
                         round(est.cycles), round(est.energy_nj)))
    report(
        "fig08_associativity",
        "Figure 8 -- miss rate / cycles / energy vs set associativity "
        "(C64L8, unoptimized layout, Em=4.95)",
        ("kernel", "ways", "miss rate", "cycles", "energy nJ"),
        rows,
    )

    # Conflict-ridden kernels improve dramatically by 8 ways.
    for name in ("pde", "dequant"):
        by_ways = {e.config.ways: e for e in table[name]}
        assert by_ways[8].miss_rate < by_ways[1].miss_rate / 2, name
        assert by_ways[8].cycles < by_ways[1].cycles, name
    # Where no conflicts exist, associativity only costs hit time
    # (the paper's "does not necessarily decrease" caveat).
    sor = {e.config.ways: e for e in table["sor"]}
    if sor[8].miss_rate >= sor[1].miss_rate - 1e-9:
        assert sor[8].cycles >= sor[1].cycles
