"""Figure 1: Compress energy vs (cache size, line size) for two Em extremes.

Paper claim: "While the energy consumption values reduce with increase in
cache size and line size for Em = 43.56 nJ, the energy consumption values
increase with increase in cache size and line size for Em = 2.31 nJ."

The trend is evaluated over the conflict-free region of the grid (above the
Section 3 minimum size 4L); below it both Em settings thrash identically.
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import LOW_POWER_2MBIT, SRAM_16MBIT
from repro.kernels import make_compress


def run_grids():
    grids = {}
    for sram in (LOW_POWER_2MBIT, SRAM_16MBIT):
        explorer = MemExplorer(make_compress(), energy_model=EnergyModel(sram=sram))
        result = explorer.explore(configs=FIGURE_GRID)
        grids[sram.energy_per_access_nj] = {
            e.config: e.energy_nj for e in result
        }
    return grids


def test_fig01_energy_em(benchmark, report):
    grids = benchmark.pedantic(run_grids, rounds=1, iterations=1)
    low, high = grids[2.31], grids[43.56]

    rows = [
        (str(config.size), config.line_size, low[config], high[config])
        for config in sorted(low)
    ]
    report(
        "fig01_energy_em",
        "Figure 1 -- Compress: energy (nJ) vs cache/line size, Em=2.31 vs 43.56",
        ("T", "L", "E(Em=2.31)", "E(Em=43.56)"),
        rows,
    )

    # Shape: with the cheap SRAM, growing the (conflict-free) cache raises
    # energy; with the expensive SRAM, it lowers it relative to the
    # smallest cache.
    from repro.core.config import CacheConfig

    assert low[CacheConfig(512, 4)] > low[CacheConfig(16, 4)]
    assert low[CacheConfig(256, 4)] > low[CacheConfig(64, 4)]
    assert high[CacheConfig(64, 4)] < high[CacheConfig(16, 4)]
    assert high[CacheConfig(64, 32)] < high[CacheConfig(64, 4)]
    # The minimum-energy configurations sit at opposite ends.
    assert min(low, key=low.get).size < min(high, key=high.get).size
