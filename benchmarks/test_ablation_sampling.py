"""Ablation: set-sampled exploration accuracy.

Full MemExplore sweeps simulate every access at every configuration; set
sampling simulates a quarter (or an eighth) of the sets and scales.  This
ablation measures the sampled miss-rate error across the Figure 1-4 grid
and checks the property that matters: the minimum-energy configuration
chosen from sampled estimates matches the exact sweep's choice.
"""

import numpy as np

from conftest import FIGURE_GRID

from repro.cache.sampling import sampled_miss_rate
from repro.core.cycles import processor_cycles
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant

STRIDES = (2, 4)


def run_comparison():
    out = {}
    for make in (make_compress, make_dequant):
        kernel = make()
        explorer = MemExplorer(kernel)
        model = explorer.energy_model
        rows = []
        for config in FIGURE_GRID:
            exact = explorer.evaluate(config)
            trace, _ = explorer._trace_for(config)
            line_ids = trace.line_ids(config.line_size)
            sampled = {}
            for stride in STRIDES:
                if config.num_sets < stride:
                    sampled[stride] = exact.miss_rate
                    continue
                est = sampled_miss_rate(
                    line_ids, config.num_sets, config.ways, sample_every=stride
                )
                sampled[stride] = est.miss_rate
            energy = {
                stride: model.total_energy(
                    config.size, config.line_size, config.ways,
                    miss_rate=mr, events=exact.events, add_bs=exact.add_bs,
                )
                for stride, mr in sampled.items()
            }
            rows.append((config, exact, sampled, energy))
        out[kernel.name] = rows
    return out


def test_ablation_sampling(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = []
    for name, rows in results.items():
        for config, exact, sampled, _ in rows:
            table.append(
                (name, config.label(), exact.miss_rate,
                 sampled[2], sampled[4])
            )
    report(
        "ablation_sampling",
        "Ablation -- exact vs set-sampled miss rates (strides 2 and 4)",
        ("kernel", "config", "exact mr", "mr @ 1/2", "mr @ 1/4"),
        table,
    )

    for name, rows in results.items():
        errors = [
            abs(sampled[4] - exact.miss_rate)
            for _, exact, sampled, _ in rows
        ]
        # Quarter-sampling stays within a few points of exact everywhere.
        assert max(errors) < 0.12, name
        assert float(np.mean(errors)) < 0.03, name
        # The sampled sweep picks the same minimum-energy configuration.
        exact_best = min(rows, key=lambda r: r[1].energy_nj)[0]
        sampled_best = min(rows, key=lambda r: r[3][4])[0]
        assert sampled_best == exact_best, name
