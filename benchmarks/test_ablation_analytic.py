"""Ablation: the paper's analytic model vs trace-driven simulation.

The authors used closed-form miss expressions instead of a simulator.
This bench quantifies what that choice cost: over the Figure 1-4 grid the
analytic model (a) agrees with the simulator exactly at the minimum
conflict-free sizes, (b) overestimates misses above them (it ignores
cross-sweep retention, which is why the paper's min-time points land at
larger caches than ours), and (c) is orders of magnitude faster.
"""

import time

from conftest import FIGURE_GRID

from repro.core.analytic import AnalyticExplorer
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant


def run_comparison():
    out = {}
    for make in (make_compress, make_dequant):
        kernel = make()
        t0 = time.perf_counter()
        analytic = AnalyticExplorer(kernel).explore(configs=FIGURE_GRID)
        t_analytic = time.perf_counter() - t0
        t0 = time.perf_counter()
        simulated = MemExplorer(kernel).explore(configs=FIGURE_GRID)
        t_sim = time.perf_counter() - t0
        out[kernel.name] = (analytic, simulated, t_analytic, t_sim)
    return out


def test_ablation_analytic(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (analytic, simulated, t_a, t_s) in results.items():
        for ea, es in zip(analytic, simulated):
            rows.append(
                (name, ea.config.label(), ea.miss_rate, es.miss_rate)
            )
        rows.append((name, "runtime(s)", round(t_a, 5), round(t_s, 5)))
    report(
        "ablation_analytic",
        "Ablation -- analytic (paper-style) vs simulated miss rates",
        ("kernel", "config", "analytic mr", "simulated mr"),
        rows,
    )

    for name, (analytic, simulated, t_a, t_s) in results.items():
        for ea, es in zip(analytic, simulated):
            if ea.miss_rate < 1.0:  # above the analytic minimum size
                # Analytic never underestimates (no-retention assumption).
                assert es.miss_rate <= ea.miss_rate + 1e-9, (name, ea.config)
        # Both methods agree on the headline anchor.
        assert analytic.min_energy().config == simulated.min_energy().config
        # And the closed form is dramatically cheaper.
        assert t_a < t_s
