"""Extension bench: prefetching and DRAM row-buffer effects.

Two post-paper realities, measured on the paper's own kernels:

* **Sequential prefetch** removes the *compulsory* misses the paper's
  levers (layout, tiling, associativity) cannot touch -- dramatic on the
  streaming kernels, useless on random-ish access;
* **DRAM main memory** replaces the flat ``Em`` with open-row structure,
  and the Section 4.1 layout turns out to help there too: its miss stream
  is more row-sequential than the dense layout's thrash.
"""

import pytest

from repro.cache.prefetch import PrefetchCache
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.energy.dram import miss_stream_energy
from repro.kernels import make_compress, make_dequant, make_sor

GEO = CacheGeometry(64, 8, 1)


def run_study():
    prefetch_rows = []
    for make in (make_compress, make_sor, make_dequant):
        kernel = make()
        layout = kernel.optimized_layout(64, 8).layout
        trace = kernel.trace(layout=layout)
        plain = CacheSimulator(GEO).run(trace)
        pf = PrefetchCache(GEO).run(trace)
        prefetch_rows.append((kernel.name, plain.miss_rate, pf.miss_rate,
                              pf.accuracy, pf.memory_fetches, plain.misses))
    dram_rows = []
    for make in (make_compress, make_dequant):
        kernel = make(element_size=4)
        dense = miss_stream_energy(kernel.trace(), 64, 8)
        layout = kernel.optimized_layout(64, 8).layout
        padded = miss_stream_energy(kernel.trace(layout=layout), 64, 8)
        dram_rows.append((kernel.name, dense, padded))
    return prefetch_rows, dram_rows


def test_ext_prefetch_dram(benchmark, report):
    prefetch_rows, dram_rows = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    table = []
    for name, plain_mr, pf_mr, accuracy, fetches, plain_misses in prefetch_rows:
        table.append(("prefetch:" + name, plain_mr, pf_mr, accuracy))
    for name, dense, padded in dram_rows:
        table.append(
            ("dram:" + name, round(dense.energy_nj), round(padded.energy_nj),
             round(padded.row_hit_rate, 3))
        )
    report(
        "ext_prefetch_dram",
        "Extension -- sequential prefetch and DRAM row-buffer locality",
        ("study", "baseline", "improved", "aux"),
        table,
    )

    results = {r[0]: r for r in prefetch_rows}
    # Single-array streams: demand misses collapse at high accuracy,
    # without inflating memory traffic beyond ~1.5x the demand misses.
    for name in ("compress", "sor"):
        _, plain_mr, pf_mr, accuracy, fetches, plain_misses = results[name]
        assert pf_mr < plain_mr / 2, name
        assert accuracy > 0.9, name
        assert fetches < plain_misses * 1.5, name
    # Dequant's three interleaved streams defeat next-line prefetch in a
    # direct-mapped cache: each prefetched line lands on the *next* class's
    # slot (the very slots the Section 4.1 layout separated) and is evicted
    # before use -- a measured interaction, not a modelling artefact.
    _, plain_mr, pf_mr, accuracy, _, _ = results["dequant"]
    assert pf_mr == pytest.approx(plain_mr, rel=0.05)
    assert accuracy < 0.1
    for name, dense, padded in dram_rows:
        # The layout saves off-chip DRAM energy on top of cache misses.
        assert padded.energy_nj < dense.energy_nj, name
