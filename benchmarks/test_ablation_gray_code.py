"""Ablation: Gray-coded vs binary address bus.

The paper assumes Gray coding when computing ``Add_bs`` (Section 2.3).
This ablation quantifies the assumption: for the loop kernels' largely
sequential address streams, Gray coding reduces the measured address-bus
switching, and with it ``E_dec``/``E_io`` -- but the configuration ranking
is insensitive to the choice (the ``Em*L`` term dominates misses).
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant


def run_comparison():
    out = {}
    for make in (make_compress, make_dequant):
        kernel = make()
        gray = MemExplorer(kernel, gray_code=True).explore(configs=FIGURE_GRID)
        binary = MemExplorer(kernel, gray_code=False).explore(configs=FIGURE_GRID)
        out[kernel.name] = (gray, binary)
    return out


def test_ablation_gray_code(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (gray, binary) in results.items():
        for eg, eb in zip(gray, binary):
            rows.append(
                (name, eg.config.label(), eg.add_bs, eb.add_bs,
                 round(eg.energy_nj), round(eb.energy_nj))
            )
    report(
        "ablation_gray_code",
        "Ablation -- Gray vs binary address-bus coding",
        ("kernel", "config", "gray bs", "binary bs", "E gray", "E binary"),
        rows,
    )

    for name, (gray, binary) in results.items():
        # Ranking: the minimum-energy configuration is coding-invariant.
        assert gray.min_energy().config == binary.min_energy().config, name

    # Switching: Gray wins on Compress's single-array, sequential-heavy
    # stream (the case the encoding was designed for).  Dequant interleaves
    # three arrays, so consecutive bus words jump across bases and Gray
    # coding loses its edge -- a real effect the bench records rather than
    # hides.
    gray, binary = results["compress"]
    mean_gray = sum(e.add_bs for e in gray) / len(gray)
    mean_binary = sum(e.add_bs for e in binary) / len(binary)
    assert mean_gray < mean_binary
