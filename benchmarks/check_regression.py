"""Benchmark regression gate: compare timing tables against baselines.

The perf benches (``test_perf_engine.py``, ``test_perf_moo.py``,
``test_perf_obs.py``, ``test_perf_resilience.py``,
``test_perf_serve.py``) write human-readable
tables under ``benchmarks/results/`` (``test_perf_engine.py`` writes two:
its own sweep table and the one-pass grid table).  CI stashes the committed baselines, re-runs the
benches, and calls this script to diff the two directories::

    python benchmarks/check_regression.py BASELINE_DIR CURRENT_DIR

A measurement regresses when it is more than ``--threshold`` (default
25%) slower than its baseline *and* slower by more than ``--floor``
(default 0.02 s) in absolute terms -- the floor keeps sub-hundredth-of-a-
second measurements, which are dominated by scheduler noise, from flaking
the gate.  Any regression (or a measurement that disappeared from the
current results) exits non-zero.

Two table shapes are understood, matching what the benches emit:

* a header row containing a ``seconds`` column, followed by data rows
  whose trailing fields are numbers (``path  seconds  configs/s``);
* label rows ending in ``(s)`` with the value as the last field
  (``warm sweep, spans disabled (s)   0.0081``).

Everything else (cache-behaviour tables, titles, counts) is ignored, so
the benches stay free to evolve their prose.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Result files the gate covers (others under results/ are figure tables).
PERF_FILES = (
    "perf_engine",
    "perf_moo",
    "perf_obs",
    "perf_onepass",
    "perf_resilience",
    "perf_serve",
)


def _to_float(token: str):
    try:
        return float(token)
    except ValueError:
        return None


def parse_seconds(text: str) -> Dict[str, float]:
    """``label -> seconds`` for every timing measurement in one table."""
    measurements: Dict[str, float] = {}
    seconds_index = None
    trailing_count = 0
    for line in text.splitlines():
        if not line.strip():
            seconds_index = None
            continue
        fields = line.split()
        if "(s)" in line:
            value = _to_float(fields[-1])
            if value is not None:
                label = line.rsplit("(s)", 1)[0].strip() + " (s)"
                measurements[label] = value
            continue
        if seconds_index is None:
            if "seconds" in fields:
                # Header: the label column is first, numeric columns after.
                numeric_cols = fields[1:]
                seconds_index = numeric_cols.index("seconds")
                trailing_count = len(numeric_cols)
            continue
        trailing = [_to_float(token) for token in fields[-trailing_count:]]
        if len(fields) <= trailing_count or any(
            value is None for value in trailing
        ):
            continue  # a sub-header or prose line inside the table
        label = " ".join(fields[: len(fields) - trailing_count])
        measurements[label] = trailing[seconds_index]
    return measurements


def load_directory(
    directory: Path, names=PERF_FILES, strict: bool = True
) -> Dict[str, float]:
    """Seconds measurements across every covered file, keyed ``file:label``.

    Every covered file must exist: a baseline that silently vanishes would
    otherwise shrink the gate to whatever happens to be on disk.  Pass
    ``strict=False`` to tolerate gaps (not used by the CI gate).
    """
    measurements: Dict[str, float] = {}
    for name in names:
        path = directory / f"{name}.txt"
        if not path.exists():
            if strict:
                raise FileNotFoundError(
                    f"{path}: covered baseline missing -- regenerate with "
                    "'python -m pytest benchmarks/' and commit the results"
                )
            continue
        for label, value in parse_seconds(path.read_text()).items():
            measurements[f"{name}:{label}"] = value
    return measurements


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    floor: float,
) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` between two measurement sets."""
    regressions: List[str] = []
    notes: List[str] = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in current:
            regressions.append(f"{key}: measured {base:.5f}s in the "
                               "baseline but missing from current results")
            continue
        now = current[key]
        if now > base * (1.0 + threshold) and now - base > floor:
            regressions.append(
                f"{key}: {base:.5f}s -> {now:.5f}s "
                f"(+{(now / base - 1.0) * 100.0:.1f}%, "
                f"threshold {threshold * 100.0:.0f}%)"
            )
        elif base > now * (1.0 + threshold) and base - now > floor:
            notes.append(
                f"{key}: improved {base:.5f}s -> {now:.5f}s"
            )
    for key in sorted(set(current) - set(baseline)):
        notes.append(f"{key}: new measurement ({current[key]:.5f}s)")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="directory with the committed baseline tables")
    parser.add_argument("current", type=Path,
                        help="directory with freshly generated tables")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that fails (default 0.25)")
    parser.add_argument("--floor", type=float, default=0.02,
                        help="absolute seconds below which slowdowns are "
                             "noise (default 0.02)")
    args = parser.parse_args(argv)

    try:
        baseline = load_directory(args.baseline)
        current = load_directory(args.current)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not baseline:
        print(f"no perf baselines found under {args.baseline}", file=sys.stderr)
        return 2
    regressions, notes = compare(
        baseline, current, args.threshold, args.floor
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"{len(regressions)} benchmark regression(s):", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"{len(baseline)} measurement(s) within "
          f"{args.threshold * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
