"""Figure 10: the minimum-energy cache configuration of every MPEG decoder
kernel.

Paper claim: each kernel has its own minimum-energy ``(T, L, S, B)`` tuple
and they differ from kernel to kernel (the table lists nine distinct rows);
the configurations are small caches with small lines and high
associativity/tiling where the kernel's reuse rewards them.
"""

from repro.core.composite import CompositeProgram
from repro.core.config import design_space
from repro.kernels import mpeg_decoder_kernels


def configs():
    return list(
        design_space(
            max_size=512,
            min_size=16,
            max_line=16,
            ways=(1, 2, 4, 8),
            tilings=(1, 2, 4, 8, 16),
        )
    )


def run_optima():
    program = CompositeProgram(mpeg_decoder_kernels(macroblocks=2))
    return program.per_kernel_optima(configs())


def test_fig10_mpeg_kernels(benchmark, report):
    optima = benchmark.pedantic(run_optima, rounds=1, iterations=1)
    rows = [
        (name, config.size, config.line_size, config.ways, config.tiling,
         round(energy))
        for name, (config, energy) in optima.items()
    ]
    report(
        "fig10_mpeg_kernels",
        "Figure 10 -- minimum-energy cache configuration per MPEG kernel",
        ("kernel", "T", "L", "S", "B", "energy nJ"),
        rows,
    )

    assert len(optima) == 9
    # The paper's table shows small-cache optima (64-512 bytes there).
    for name, (config, energy) in optima.items():
        assert config.size <= 512, name
        assert energy > 0, name
    # Not all kernels share one optimum -- the motivation for Section 5.
    distinct = {config for config, _ in optima.values()}
    assert len(distinct) >= 2
