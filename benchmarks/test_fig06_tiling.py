"""Figure 6: miss rate, cycles and energy vs tiling size at C64L8 for the
five kernels, plus the reuse-kernel demonstration at C256L16.

Paper claim: "The energy consumption reduces in all the examples up to
tiling size of 8 ... however, if the tiling size is greater than the number
of cache lines, the data in the cache gets replaced before being used" --
so energy falls with the tiling size while the tile fits and rises beyond.

Real-simulator caveat (recorded in EXPERIMENTS.md): only kernels with
cross-iteration reuse (Matrix Multiplication here, Transpose in Example 3)
benefit from tiling; the streaming stencils see no gain, so the paper's
across-the-board improvement is reproduced on the reuse kernel and the
degradation-past-the-line-count claim is reproduced everywhere.
"""

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import make_matmul, paper_kernels

TILINGS = (1, 2, 4, 8, 16)


def run_sweeps():
    c64l8 = {}
    for kernel in paper_kernels():
        explorer = MemExplorer(kernel)
        c64l8[kernel.name] = [
            explorer.evaluate(CacheConfig(64, 8, 1, b)) for b in TILINGS
        ]
    matmul = MemExplorer(make_matmul())
    c256l16 = [matmul.evaluate(CacheConfig(256, 16, 1, b)) for b in (1, 2, 4, 8, 16, 32)]
    return c64l8, c256l16


def test_fig06_tiling(benchmark, report):
    c64l8, c256l16 = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    rows = []
    for name, estimates in c64l8.items():
        for est in estimates:
            rows.append((name, "C64L8", est.config.tiling, est.miss_rate,
                         round(est.cycles), round(est.energy_nj)))
    for est in c256l16:
        rows.append(("matmul", "C256L16", est.config.tiling, est.miss_rate,
                     round(est.cycles), round(est.energy_nj)))
    report(
        "fig06_tiling",
        "Figure 6 -- miss rate / cycles / energy vs tiling size",
        ("kernel", "geometry", "B", "miss rate", "cycles", "energy nJ"),
        rows,
    )

    # Reuse kernel at C256L16 (16 lines): monotone gain to B=8, loss at 16.
    by_b = {e.config.tiling: e for e in c256l16}
    assert by_b[2].miss_rate < by_b[1].miss_rate
    assert by_b[4].miss_rate < by_b[2].miss_rate
    assert by_b[8].miss_rate < by_b[4].miss_rate
    assert by_b[8].energy_nj < by_b[1].energy_nj
    assert by_b[16].miss_rate > by_b[8].miss_rate  # tile exceeds the lines
    # Matmul benefits at C64L8 too (B=2 is its best fitting tile there).
    matmul_c64 = {e.config.tiling: e for e in c64l8["matmul"]}
    assert matmul_c64[2].miss_rate < matmul_c64[1].miss_rate
