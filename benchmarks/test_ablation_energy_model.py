"""Ablation: simple (paper) vs detailed (Kamble-Ghose) energy model.

The paper keeps only the dominant energy terms and cites Kamble & Ghose to
justify ignoring tag/comparator overhead.  This ablation re-runs the
Figure 1-4 grid under the detailed model and checks (a) the minimum-energy
configuration family is unchanged, (b) the measured associativity overhead
stays a small fraction across the explored space -- i.e. the paper's
simplification is validated, not assumed.
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.energy.kamble_ghose import KambleGhoseModel
from repro.energy.model import EnergyModel
from repro.kernels import make_compress


def run_comparison():
    kernel = make_compress()
    simple = MemExplorer(kernel, energy_model=EnergyModel()).explore(
        configs=FIGURE_GRID
    )
    detailed_model = KambleGhoseModel()
    detailed = MemExplorer(kernel, energy_model=detailed_model).explore(
        configs=FIGURE_GRID
    )
    overheads = {
        (size, line, ways): detailed_model.associativity_overhead(size, line, ways)
        for size in (64, 128, 256, 512)
        for line in (8, 16)
        for ways in (1, 2, 4, 8)
        if ways * line <= size
    }
    return simple, detailed, overheads


def test_ablation_energy_model(benchmark, report):
    simple, detailed, overheads = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    rows = [
        (es.config.label(), round(es.energy_nj), round(ed.energy_nj))
        for es, ed in zip(simple, detailed)
    ]
    rows += [
        (f"C{s}L{l}S{w}", "tag-overhead", round(o, 4))
        for (s, l, w), o in sorted(overheads.items())
    ]
    report(
        "ablation_energy_model",
        "Ablation -- paper's simple energy model vs detailed Kamble-Ghose",
        ("config", "simple nJ", "detailed nJ"),
        rows,
    )

    # Same minimum-energy configuration under both models.
    assert simple.min_energy().config == detailed.min_energy().config
    # The energy ordering of the conflict-free region is strongly
    # preserved (Spearman rank correlation across the two models).
    from scipy.stats import spearmanr

    feasible = [
        (es.energy_nj, ed.energy_nj)
        for es, ed in zip(simple, detailed)
        if es.miss_rate < 0.5
    ]
    rho, _ = spearmanr(
        [s for s, _ in feasible], [d for _, d in feasible]
    )
    assert rho > 0.8
    # The tag/comparator share stays a minority term everywhere.
    assert max(overheads.values()) < 0.30
    assert sum(overheads.values()) / len(overheads) < 0.10
