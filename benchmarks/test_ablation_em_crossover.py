"""Ablation: where does the Em crossover fall?

Section 3 contrasts Em = 2.31 nJ (small caches win energy) with Em = 43.56
nJ (large caches win).  This ablation sweeps Em continuously to locate the
crossover: the smallest Em at which a larger cache's minimum energy beats
C16L4 for Compress.  The paper's default part (4.95 nJ) must land on the
small-cache side of that crossover and the 16 Mbit part on the other.
"""

from conftest import FIGURE_GRID

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import SRAMPart
from repro.kernels import make_compress

EM_SWEEP = (1.0, 2.31, 4.95, 8.0, 12.0, 20.0, 43.56, 80.0)


def run_sweep():
    outcome = []
    for em in EM_SWEEP:
        part = SRAMPart(name=f"em{em}", size_bits=1, energy_per_access_nj=em)
        explorer = MemExplorer(make_compress(), energy_model=EnergyModel(sram=part))
        result = explorer.explore(configs=FIGURE_GRID)
        best = result.min_energy()
        outcome.append((em, best.config, best.energy_nj))
    return outcome


def test_ablation_em_crossover(benchmark, report):
    outcome = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (em, config.label(), round(energy)) for em, config, energy in outcome
    ]
    report(
        "ablation_em_crossover",
        "Ablation -- minimum-energy configuration vs Em (Compress)",
        ("Em nJ", "min-E config", "energy nJ"),
        rows,
    )

    best_at = {em: config for em, config, _ in outcome}
    # The paper's two quoted regimes sit on opposite sides of a crossover.
    assert best_at[2.31] == CacheConfig(16, 4)
    assert best_at[4.95] == CacheConfig(16, 4)
    assert best_at[43.56].size > 16
    # The winner's cache size never shrinks as Em grows.
    sizes = [config.size for _, config, _ in outcome]
    assert all(b >= a for a, b in zip(sizes, sizes[1:]))
