"""Ablation: the Section 5 record model vs a shared-cache simulation.

The paper composes whole-program metrics from *independent* per-kernel
records -- each kernel priced against its own cold cache, no interaction.
This ablation simulates the alternative: all kernel invocations
interleaved in pipeline order through one cache, each kernel's data
disjoint in memory.  The record model's error is the quantity the paper
implicitly assumed negligible; the bench measures it across geometries
and checks that the exploration's *ranking* survives.
"""

from repro.core.composite import CompositeProgram
from repro.core.config import CacheConfig
from repro.kernels import mpeg_decoder_kernels

CONFIGS = [
    CacheConfig(32, 4),
    CacheConfig(64, 4),
    CacheConfig(64, 8),
    CacheConfig(128, 8),
    CacheConfig(256, 16),
    CacheConfig(512, 16),
]


def run_comparison():
    program = CompositeProgram(mpeg_decoder_kernels(macroblocks=2))
    rows = []
    for config in CONFIGS:
        record = program.evaluate(config)
        shared = program.evaluate_shared_cache(config)
        rows.append((config, record, shared))
    return rows


def test_ablation_composite(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = []
    for config, record, shared in rows:
        cycle_err = shared.cycles / record.cycles - 1.0
        energy_err = shared.energy_nj / record.energy_nj - 1.0
        table.append(
            (config.label(), round(record.cycles), round(shared.cycles),
             round(cycle_err, 4), round(energy_err, 4))
        )
    report(
        "ablation_composite",
        "Ablation -- Section 5 record model vs shared-cache simulation "
        "(MPEG, 2 macroblocks)",
        ("config", "record cyc", "shared cyc", "cycle err", "energy err"),
        table,
    )

    # The independence assumption holds to within 25% on every geometry...
    for config, record, shared in rows:
        assert abs(shared.cycles / record.cycles - 1.0) < 0.25, config
        assert abs(shared.energy_nj / record.energy_nj - 1.0) < 0.25, config
    # ...and the energy ranking of configurations is identical.
    record_rank = sorted(CONFIGS, key=lambda c: next(
        r.energy_nj for cfg, r, _ in rows if cfg == c))
    shared_rank = sorted(CONFIGS, key=lambda c: next(
        s.energy_nj for cfg, _, s in rows if cfg == c))
    assert record_rank == shared_rank
