"""Performance benchmark: the exploration service and its result store.

The service layer must not tax the engine it fronts:

* a sweep submitted through the full service stack (JobManager ->
  JobRunner -> checkpointed ParallelSweep -> sqlite store) is measured
  against the identical direct engine sweep -- the orchestration tax;
* a resubmission of the same spec is measured absolutely: it touches no
  evaluator at all, so its cost is pure store reads, and it bounds the
  fleet-wide win of request coalescing;
* every path must return bit-identical estimates, asserted here like
  every other executor bench.
"""

import time

from repro.engine import EvalCache, Evaluator, KernelWorkload
from repro.kernels import get_kernel
from repro.serve import ExplorationService, JobSpec

SPEC = JobSpec(
    kernel="compress", max_size=256, min_size=16, ways=(1, 2, 4),
    tilings=(1, 2),
)


def test_perf_serve_overhead(benchmark, report, tmp_path):
    def compare():
        configs = SPEC.configs()
        evaluator = Evaluator(
            KernelWorkload(get_kernel(SPEC.kernel)), cache=EvalCache()
        )
        evaluator.sweep(configs=configs)  # cold pass: populate the cache

        t0 = time.perf_counter()
        direct = list(evaluator.sweep(configs=configs).estimates)
        t_direct = time.perf_counter() - t0

        service = ExplorationService(
            str(tmp_path / "bench.db"), str(tmp_path / "spool")
        ).start()
        try:
            t0 = time.perf_counter()
            job, _ = service.manager.submit(SPEC)
            service.manager.wait(job.job_id, timeout_s=300)
            t_served = time.perf_counter() - t0
            served = list(job.result.estimates)

            t0 = time.perf_counter()
            again, _ = service.manager.submit(SPEC)
            service.manager.wait(again.job_id, timeout_s=300)
            t_stored = time.perf_counter() - t0
            stored = list(again.result.estimates)
        finally:
            service.stop()
        return direct, served, stored, t_direct, t_served, t_stored

    direct, served, stored, t_direct, t_served, t_stored = (
        benchmark.pedantic(compare, rounds=1, iterations=1)
    )

    # The service must not change results -- on either path.
    assert served == direct
    assert stored == direct

    n = len(direct)
    report(
        "perf_serve",
        f"Performance -- exploration service (compress warm sweep, "
        f"{n} configs)",
        ("path", "seconds", "configs/s"),
        [
            ("direct engine sweep", round(t_direct, 5), round(n / t_direct)),
            ("served, first submission", round(t_served, 5),
             round(n / t_served)),
            ("served, from store", round(t_stored, 5), round(n / t_stored)),
        ],
    )
