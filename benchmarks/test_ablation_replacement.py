"""Ablation: replacement policy sensitivity.

The paper assumes LRU.  This ablation replays the associativity sweep of
Figure 8 under FIFO and Random replacement using the reference simulator:
at the small associativities of the design space the three policies agree
closely, supporting the paper's (implicit) choice not to explore the
policy dimension.
"""

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import make_dequant, make_pde

POLICIES = ("lru", "fifo", "random")
WAYS = (1, 2, 4, 8)


def run_sweep():
    table = {}
    for make in (make_pde, make_dequant):
        kernel = make()
        trace = kernel.trace()  # dense layout: conflicts present
        for ways in WAYS:
            for policy in POLICIES:
                sim = CacheSimulator(CacheGeometry(64, 8, ways), policy=policy)
                stats = sim.run(trace)
                table[(kernel.name, ways, policy)] = stats.miss_rate
    return table


def test_ablation_replacement(benchmark, report):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (name, ways, policy, mr)
        for (name, ways, policy), mr in sorted(table.items())
    ]
    report(
        "ablation_replacement",
        "Ablation -- replacement policy at C64L8 (dense layout)",
        ("kernel", "ways", "policy", "miss rate"),
        rows,
    )

    for name in ("pde", "dequant"):
        # Direct-mapped caches have no replacement choice: identical.
        assert table[(name, 1, "lru")] == table[(name, 1, "fifo")]
        assert table[(name, 1, "lru")] == table[(name, 1, "random")]
        # At 8 ways the policies stay within a small band of each other.
        base = table[(name, 8, "lru")]
        for policy in ("fifo", "random"):
            assert abs(table[(name, 8, policy)] - base) < 0.25, (name, policy)
