"""Ablation: the loop transformations, head to head.

The paper reaches for tiling (Example 3) after dismissing interchange;
fusion is the third classic lever its MPEG pipeline leaves on the table.
This ablation measures all three on the workloads where each is the
textbook answer:

* transpose -- interchange swaps which array strides badly (no net gain),
  tiling fixes it (the paper's argument, measured);
* a producer/consumer pipeline -- fusion collapses the intermediate
  array's traffic;
* matmul -- tiling at a cache that holds the tile.
"""

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import Kernel, make_matmul, make_transpose
from repro.loops.fusion import fuse
from repro.loops.interchange import interchange
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.trace_gen import generate_trace


def pipeline(n=256):
    i = var("i")
    producer = LoopNest(
        name="blur",
        loops=(Loop("i", 1, n - 1),),
        refs=(
            ArrayRef("x", (i - 1,)),
            ArrayRef("x", (i,)),
            ArrayRef("tmp", (i,), is_write=True),
        ),
        arrays=(ArrayDecl("x", (n,)), ArrayDecl("tmp", (n,))),
    )
    consumer = LoopNest(
        name="scale",
        loops=(Loop("i", 1, n - 1),),
        refs=(
            ArrayRef("tmp", (i,)),
            ArrayRef("y", (i,), is_write=True),
        ),
        arrays=(ArrayDecl("tmp", (n,)), ArrayDecl("y", (n,))),
    )
    return producer, consumer


def run_transforms():
    out = {}
    # Interchange vs tiling on transpose.
    transpose = make_transpose()
    config = CacheConfig(64, 8)
    base = MemExplorer(transpose).evaluate(config)
    swapped = MemExplorer(
        Kernel(nest=interchange(transpose.nest, ("j", "i")))
    ).evaluate(config)
    tiled = MemExplorer(transpose).evaluate(CacheConfig(64, 8, 1, 2))
    out["transpose"] = {
        "original": base.miss_rate,
        "interchanged": swapped.miss_rate,
        "tiled B=2": tiled.miss_rate,
    }
    # Fusion on the pipeline.
    producer, consumer = pipeline()
    geo = CacheGeometry(64, 8, 1)
    sequential = CacheSimulator(geo)
    sequential.run(generate_trace(producer))
    sequential.run(generate_trace(consumer))
    fused_sim = CacheSimulator(geo)
    fused_sim.run(generate_trace(fuse(producer, consumer)))
    out["pipeline"] = {
        "separate": sequential.stats.miss_rate,
        "fused": fused_sim.stats.miss_rate,
    }
    # Tiling on matmul (its best geometry from Figure 6).
    matmul = MemExplorer(make_matmul())
    out["matmul"] = {
        "untiled": matmul.evaluate(CacheConfig(256, 16)).miss_rate,
        "tiled B=8": matmul.evaluate(CacheConfig(256, 16, 1, 8)).miss_rate,
    }
    return out


def test_ablation_transforms(benchmark, report):
    results = benchmark.pedantic(run_transforms, rounds=1, iterations=1)
    rows = [
        (workload, variant, mr)
        for workload, variants in results.items()
        for variant, mr in variants.items()
    ]
    report(
        "ablation_transforms",
        "Ablation -- interchange vs tiling vs fusion, each on its workload",
        ("workload", "variant", "miss rate"),
        rows,
    )

    transpose = results["transpose"]
    # "Interchanging does not help": same order of magnitude, still bad.
    assert transpose["interchanged"] > transpose["original"] * 0.5
    assert transpose["interchanged"] > 0.2
    # Tiling is the fix.
    assert transpose["tiled B=2"] < transpose["original"] * 0.75
    # Fusion collapses the intermediate traffic.
    assert results["pipeline"]["fused"] < results["pipeline"]["separate"]
    # Tiling pays on matmul.
    assert results["matmul"]["tiled B=8"] < results["matmul"]["untiled"] / 2
