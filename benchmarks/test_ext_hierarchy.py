"""Extension bench: a second cache level in front of the off-chip SRAM.

Beyond the paper: an L2 between the L1 and main memory filters the miss
stream, trading L2 array energy against main-memory accesses.  The bench
measures how much of the L1 miss stream a modest L2 absorbs for the
conflict-heavy dense layouts, i.e. how much of the Section 4.1 benefit a
hierarchy can recover without relayout.
"""

from repro.cache.hierarchy import TwoLevelCache
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import make_compress, make_dequant, make_pde

L1 = CacheGeometry(64, 8, 1)
# Four ways so the L2 can hold the kernels' three-or-four aliasing streams
# (their dense bases are 4 KiB apart and land in one L2 set).
L2 = CacheGeometry(512, 16, 4)


def run_comparison():
    rows = []
    for make in (make_compress, make_pde, make_dequant):
        kernel = make(element_size=4)  # dense rows alias the L1
        trace = kernel.trace()
        flat = CacheSimulator(L1).run(trace)
        stacked = TwoLevelCache(L1, L2).run(trace)
        rows.append((kernel.name, flat, stacked))
    return rows


def test_ext_hierarchy(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(
        "ext_hierarchy",
        "Extension -- L2 filtering of the L1 miss stream (dense layouts)",
        ("kernel", "L1 miss rate", "global miss rate", "L2 local miss rate"),
        [
            (name, flat.miss_rate, stacked.global_miss_rate,
             stacked.l2_local_miss_rate)
            for name, flat, stacked in rows
        ],
    )

    for name, flat, stacked in rows:
        # The L1 behaves identically with or without the L2 behind it.
        assert stacked.l1_miss_rate == flat.miss_rate, name
        # The L2 absorbs most of the conflict-driven miss stream.
        assert stacked.global_miss_rate < flat.miss_rate / 2, name
