"""Performance benchmark: simulator throughput.

The only bench that times an *implementation* rather than regenerating a
figure: the vectorized sweep fast path versus the reference object
simulator on the Matrix Multiplication trace (the largest bundled
workload).  The fast path is what makes full MemExplore sweeps interactive;
this bench quantifies (and guards) that speedup.
"""

import numpy as np

from repro.cache.fastsim import fast_hit_miss_counts
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import make_matmul


def _trace():
    return make_matmul(n=15).trace()  # ~13.5k accesses


def test_perf_fast_path_direct_mapped(benchmark):
    trace = _trace()
    line_ids = trace.line_ids(8)

    def run():
        return fast_hit_miss_counts(line_ids, 8, 1)

    hits, misses = benchmark(run)
    assert hits + misses == len(trace)


def test_perf_fast_path_associative(benchmark):
    trace = _trace()
    line_ids = trace.line_ids(8)

    def run():
        return fast_hit_miss_counts(line_ids, 2, 4)

    hits, misses = benchmark(run)
    assert hits + misses == len(trace)


def test_perf_reference_simulator(benchmark):
    trace = _trace()

    def run():
        sim = CacheSimulator(CacheGeometry(64, 8, 1))
        return sim.run(trace).misses

    misses = benchmark(run)
    # The two paths agree (also asserted exhaustively in tests/).
    line_ids = trace.line_ids(8)
    assert misses == fast_hit_miss_counts(line_ids, 8, 1)[1]


def test_perf_trace_generation(benchmark):
    kernel = make_matmul(n=15)

    def run():
        return kernel.trace()

    trace = benchmark(run)
    assert len(trace) == kernel.accesses_per_invocation


def test_perf_fast_path_beats_reference(benchmark, report):
    """One explicit throughput comparison, recorded to results/."""
    import time

    trace = _trace()
    line_ids = trace.line_ids(8)

    def compare():
        t0 = time.perf_counter()
        fast_hit_miss_counts(line_ids, 8, 1)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        CacheSimulator(CacheGeometry(64, 8, 1)).run(trace)
        t_ref = time.perf_counter() - t0
        return t_fast, t_ref

    t_fast, t_ref = benchmark.pedantic(compare, rounds=1, iterations=1)
    accesses = len(trace)
    report(
        "perf_simulator",
        "Performance -- simulator throughput (matmul n=15 trace)",
        ("path", "seconds", "accesses/s"),
        [
            ("fast (vectorized)", round(t_fast, 5), round(accesses / t_fast)),
            ("reference (OO)", round(t_ref, 5), round(accesses / t_ref)),
        ],
    )
    assert t_fast < t_ref
