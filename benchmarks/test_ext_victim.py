"""Extension bench: victim buffer vs off-chip assignment vs associativity.

Three cures for conflict misses on the int-element kernels whose dense
rows alias a 64-byte cache: the paper's Section 4.1 layout (software), a
Jouppi victim buffer (hardware, small), and set associativity (hardware,
expensive).  The bench sweeps victim-buffer depths and reports how many
entries it takes to match each alternative.
"""

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.victim import VictimCache
from repro.kernels import make_compress, make_pde

GEO = CacheGeometry(64, 8, 1)
DEPTHS = (1, 2, 4, 8)


def run_comparison():
    out = {}
    for make in (make_compress, make_pde):
        kernel = make(element_size=4)
        dense = kernel.trace()
        plain = CacheSimulator(GEO).run(dense).miss_rate
        assoc = CacheSimulator(CacheGeometry(64, 8, 4)).run(dense).miss_rate
        layout = kernel.optimized_layout(64, 8)
        relaid = CacheSimulator(GEO).run(
            kernel.trace(layout=layout.layout)
        ).miss_rate
        victims = {
            depth: VictimCache(GEO, victim_entries=depth).run(dense).miss_rate
            for depth in DEPTHS
        }
        out[kernel.name] = (plain, assoc, relaid, victims)
    return out


def test_ext_victim(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (plain, assoc, relaid, victims) in results.items():
        rows.append((name, "direct-mapped", plain))
        rows.append((name, "4-way assoc", assoc))
        rows.append((name, "sec-4.1 layout", relaid))
        for depth, mr in victims.items():
            rows.append((name, f"victim x{depth}", mr))
    report(
        "ext_victim",
        "Extension -- conflict-miss cures at C64L8 (int elements, dense rows)",
        ("kernel", "organisation", "miss rate"),
        rows,
    )

    for name, (plain, assoc, relaid, victims) in results.items():
        # Deeper buffers monotonically help.
        depths = sorted(victims)
        rates = [victims[d] for d in depths]
        assert rates == sorted(rates, reverse=True), name
        # A small buffer already removes most of the thrash.
        assert victims[4] < plain / 2, name
        # The software layout remains at least as good as any cure here.
        assert relaid <= min(min(victims.values()), assoc) + 0.05, name
