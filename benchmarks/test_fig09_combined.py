"""Figure 9: set associativity x tiling at C64L8, optimized vs unoptimized
off-chip assignment (the paper's parenthesised columns).

Paper claims: the unoptimized miss rates are catastrophic ("so large that
tiling and set associativity have little effect") while the optimized ones
are small; the combination never beats fixing the layout first.  The
baselines use int (4-byte) elements whose dense rows alias the 64-byte
cache, reproducing the parenthesised 0.97-0.999 regime.
"""

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import (
    make_compress,
    make_dequant,
    make_matmul,
    make_pde,
    make_sor,
)

COMBOS = [(1, 1), (2, 4), (8, 8)]  # (S, B) columns of Figure 9


def run_table():
    table = {}
    for make in (make_compress, make_matmul, make_pde, make_sor, make_dequant):
        kernel = make(element_size=4)
        opt = MemExplorer(kernel, optimize_layout=True)
        unopt = MemExplorer(kernel, optimize_layout=False)
        cells = []
        for ways, tiling in COMBOS:
            config = CacheConfig(64, 8, ways, tiling)
            cells.append((config, opt.evaluate(config), unopt.evaluate(config)))
        table[kernel.name] = cells
    return table


def test_fig09_combined(benchmark, report):
    table = benchmark.pedantic(run_table, rounds=1, iterations=1)
    rows = []
    for name, cells in table.items():
        for config, e_opt, e_unopt in cells:
            rows.append(
                (
                    name,
                    f"S{config.ways}B{config.tiling}",
                    e_opt.miss_rate,
                    f"({e_unopt.miss_rate:.3f})",
                    round(e_opt.cycles),
                    f"({round(e_unopt.cycles)})",
                    round(e_opt.energy_nj),
                    f"({round(e_unopt.energy_nj)})",
                )
            )
    report(
        "fig09_combined",
        "Figure 9 -- SA x tiling at C64L8, optimized (unoptimized) values",
        ("kernel", "S/B", "mr", "(mr)", "cycles", "(cycles)", "E nJ", "(E nJ)"),
        rows,
    )

    for name, cells in table.items():
        for config, e_opt, e_unopt in cells:
            # The optimized layout never loses; at 8 ways the 8-line cache
            # is fully associative, so placement cannot matter and the two
            # columns coincide (the simulator's honest version of the
            # paper's "tiling and set associativity have little effect").
            assert e_opt.miss_rate <= e_unopt.miss_rate + 1e-9, (name, config)
        # "Note that there is a significant difference between optimized
        # and unoptimized values": the direct-mapped untiled baselines are
        # catastrophic without the layout fix.
        _, base_opt, base_unopt = cells[0]
        assert base_unopt.miss_rate > 0.5, name
        assert base_opt.miss_rate < base_unopt.miss_rate, name
        assert base_opt.miss_rate < 0.55, name
