"""Ablation: the paper's read-only energy accounting.

"We consider only energy due to READ (READ HIT and READ MISS) because
reads dominate processor cache accesses."  This ablation recomputes every
grid point charging ALL accesses (reads and writes) and checks what the
simplification costs: the absolute energies shift by roughly the write
share of the access mix, but the minimum-energy configuration -- the
thing the exploration exists to find -- is unchanged.
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_sor


def run_comparison():
    out = {}
    for make in (make_compress, make_sor):
        kernel = make()
        explorer = MemExplorer(kernel)
        model = explorer.energy_model
        read_only = {}
        all_access = {}
        for config in FIGURE_GRID:
            estimate = explorer.evaluate(config)
            read_only[config] = estimate.energy_nj
            all_access[config] = model.total_energy(
                config.size,
                config.line_size,
                config.ways,
                miss_rate=estimate.miss_rate,  # over ALL accesses
                events=estimate.events,
                add_bs=estimate.add_bs,
            ) * (estimate.accesses / max(estimate.reads, 1))
        write_share = 1.0 - estimate.reads / estimate.accesses
        out[kernel.name] = (read_only, all_access, write_share)
    return out


def test_ablation_write_energy(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (read_only, all_access, write_share) in results.items():
        for config in sorted(read_only):
            rows.append(
                (name, config.label(), round(read_only[config]),
                 round(all_access[config]))
            )
        rows.append((name, "write-share", round(write_share, 3), "--"))
    report(
        "ablation_write_energy",
        "Ablation -- read-only (paper) vs all-access energy accounting",
        ("kernel", "config", "read-only nJ", "all-access nJ"),
        rows,
    )

    for name, (read_only, all_access, write_share) in results.items():
        # Charging writes raises every point (more traffic, never less).
        for config in read_only:
            assert all_access[config] >= read_only[config] * 0.99, (name, config)
        # Writes are a minority of the access mix for these kernels.
        assert write_share < 0.35, name
        # The chosen configuration is either invariant (Compress) or flips
        # between near-tied points (SOR's C16L4 vs C64 family sit within a
        # few percent of each other, so the write accounting tips the
        # balance) -- a measured caveat to the paper's simplification.
        best_read = min(read_only, key=read_only.get)
        best_all = min(all_access, key=all_access.get)
        if best_read != best_all:
            assert all_access[best_read] <= 1.20 * all_access[best_all], name
            assert read_only[best_all] <= 1.20 * read_only[best_read], name
    assert (
        min(results["compress"][0], key=results["compress"][0].get)
        == min(results["compress"][1], key=results["compress"][1].get)
    )
