"""Ablation: exhaustive MemExplore vs pruned search strategies.

Quantifies the design-automation trade-off: the greedy coordinate descent
and the bound-pruned sweep find the same minimum-energy configuration as
the exhaustive Algorithm MemExplore on the bundled kernels, at a fraction
of the evaluations (each evaluation being a full trace simulation).
"""

from repro.core.config import CacheConfig, design_space
from repro.core.explorer import MemExplorer
from repro.moo.heuristics import greedy_descent, pruned_min_energy
from repro.kernels import make_compress, make_dequant, make_sor

SIZES = (16, 32, 64, 128, 256, 512)
LINES = (4, 8, 16, 32)


def run_strategies():
    out = {}
    for make in (make_compress, make_sor, make_dequant):
        kernel = make()
        configs = [
            CacheConfig(t, l) for t in SIZES for l in LINES if l <= t
        ]
        exhaustive = MemExplorer(kernel).explore(configs=configs)
        greedy = greedy_descent(
            MemExplorer(kernel).evaluate,
            sizes=SIZES,
            line_sizes=LINES,
            ways=(1,),
            tilings=(1,),
        )
        explorer = MemExplorer(kernel)
        events = kernel.nest.iterations
        model = explorer.energy_model

        def bound(config, events=events, model=model):
            return events * model.e_cell(
                config.size, config.line_size, config.ways
            )

        pruned = pruned_min_energy(explorer.evaluate, configs, bound)
        out[kernel.name] = (exhaustive, greedy, pruned, len(configs))
    return out


def test_ablation_search(benchmark, report):
    results = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    rows = []
    for name, (exhaustive, greedy, pruned, n) in results.items():
        best = exhaustive.min_energy()
        rows.append((name, "exhaustive", best.config.label(), n))
        rows.append((name, "greedy", greedy.best.config.label(), greedy.evaluations))
        rows.append((name, "pruned", pruned.best.config.label(), pruned.evaluations))
    report(
        "ablation_search",
        "Ablation -- search strategy vs evaluations spent",
        ("kernel", "strategy", "min-E config", "evaluations"),
        rows,
    )

    for name, (exhaustive, greedy, pruned, n) in results.items():
        best = exhaustive.min_energy().config
        # Both strategies find the optimum with fewer evaluations.
        assert greedy.best.config == best, name
        assert pruned.best.config == best, name
        assert greedy.evaluations < n, name
        assert pruned.evaluations <= n, name
