"""Extension bench: split vs unified I/D caches across budgets.

Beyond the paper: one silicon budget, two organisations.  Each kernel
iteration fetches its loop body (12 instructions) then performs its data
accesses; the split organisation gives each stream its own direct-mapped
cache, the unified one shares everything.  Measured structure: a 64-byte
I-side pins the loop body, after which the contest is between the data
stream's conflict behaviour (split protects code from data evictions) and
the unified cache's pooled capacity -- the winner genuinely alternates
with the budget, which is exactly why the budget split deserves a sweep of
its own in any real exploration.
"""

from repro.icache.unified import split_vs_unified
from repro.kernels import make_compress, make_dequant

BUDGETS = (64, 128, 256, 512)


def run_comparison():
    out = {}
    for make in (make_compress, make_dequant):
        kernel = make(element_size=4)
        out[kernel.name] = [
            split_vs_unified(kernel, budget) for budget in BUDGETS
        ]
    return out


def test_ext_split_unified(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, comparisons in results.items():
        for r in comparisons:
            rows.append(
                (name, r.budget, f"I{r.best_icache}/D{r.best_dcache}",
                 r.split_misses, r.unified_misses, r.winner)
            )
    report(
        "ext_split_unified",
        "Extension -- split vs unified I/D caches per budget "
        "(int-element kernels, 12-instruction loop body)",
        ("kernel", "budget", "best split", "split miss", "unified miss",
         "winner"),
        rows,
    )

    for name, comparisons in results.items():
        split = [r.split_misses for r in comparisons]
        unified = [r.unified_misses for r in comparisons]
        # More budget never hurts either organisation.
        assert split == sorted(split, reverse=True), name
        assert unified == sorted(unified, reverse=True), name
    # The winner flips across the sweep for at least one kernel.
    all_winners = {
        r.winner for comparisons in results.values() for r in comparisons
    }
    assert all_winners == {"split", "unified"}
