"""Section 3: the minimum-cache-size procedure, validated by simulation.

Paper claims: Compress needs 4 cache lines (two per equivalence class), so
its minimum conflict-free cache is ``4 * L``; Matrix Addition's three cases
need one line each.  The bench regenerates the per-kernel minimum line
counts and verifies against the simulator that the Section 4.1 layout at
exactly the minimum size eliminates conflict misses.
"""

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import make_matadd, paper_kernels
from repro.loops.reuse import min_cache_lines, min_cache_size

LINE_SIZES = (2, 4, 8)


def run_analysis():
    rows = []
    kernels = paper_kernels() + [make_matadd()]
    for kernel in kernels:
        for line in LINE_SIZES:
            lines = min_cache_lines(kernel.nest, line)
            size = min_cache_size(kernel.nest, line)
            rows.append((kernel, line, lines, size))
    return rows


def test_sec3_min_cache(benchmark, report):
    rows = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    report(
        "sec3_min_cache",
        "Section 3 -- minimum conflict-free cache size per kernel",
        ("kernel", "L", "min lines", "min size B"),
        [(k.name, line, lines, size) for k, line, lines, size in rows],
    )

    by_kernel = {}
    for kernel, line, lines, size in rows:
        by_kernel.setdefault(kernel.name, {})[line] = (kernel, lines, size)

    # The paper's Compress result: 4 lines at every line size.
    for line in LINE_SIZES:
        _, lines, size = by_kernel["compress"][line]
        assert lines == 4
        assert size == 4 * line
    # Matrix Addition: three cases, one line each.
    assert by_kernel["matadd"][2][1] == 3

    # Validation: at a power-of-two size >= the minimum, the Section 4.1
    # layout really is conflict-free (checked via 3C classification).
    for kernel, line, lines, size in rows:
        pot = 1
        while pot < size:
            pot *= 2
        assignment = kernel.optimized_layout(pot * 2, line)
        if not assignment.conflict_free:
            continue  # incompatible kernel (matmul): no guarantee to check
        trace = kernel.trace(layout=assignment.layout)
        mc = CacheSimulator(CacheGeometry(pot * 2, line, 1)).classified_misses(trace)
        assert mc.conflict == 0, (kernel.name, line)
