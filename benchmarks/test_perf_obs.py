"""Performance benchmark: the cost of the observability layer.

The instrumentation contract is that *disabled* spans are free enough to
leave compiled in everywhere: each pipeline stage pays one flag check and
one shared-object return (:data:`repro.obs.spans._NULL_SPAN`).  This bench
measures that cost two ways and holds it under the 5% budget:

* a microbenchmark of the null span itself, scaled by the spans-per-
  evaluation count, compared against the measured warm per-evaluation
  time (the worst case for relative overhead -- a warm sweep does no
  simulation, so the pipeline around the spans is as thin as it gets);
* a direct wall-clock comparison of warm sweeps with profiling off and
  on, asserting the profiled run returns bit-identical estimates.

Tracing (:mod:`repro.obs.trace`) has a looser budget: it is opt-in per
job and wraps *real* evaluations, so its per-evaluation recording cost is
held under 10% of a cold evaluation -- the work a traced job actually
does.  (Relative to a warm, all-cache-hit sweep the recording dominates,
which is exactly why traces are not always-on.)
"""

import time
import timeit

from repro import obs
from repro.engine import EvalCache, Evaluator, KernelWorkload
from repro.kernels import get_kernel
from repro.obs import trace as obs_trace
from repro.obs.spans import span

SWEEP = dict(max_size=256, min_size=16, ways=(1, 2, 4), tilings=(1, 2))

#: Spans entered per Evaluator.evaluate(): evaluate, trace_gen,
#: miss_measure, add_bs, cycles, energy.
SPANS_PER_EVAL = 6

OVERHEAD_BUDGET = 0.05

#: Tracing may cost up to 10% of a *cold* (simulating) evaluation.
TRACING_BUDGET = 0.10


def test_perf_obs_overhead(benchmark, report):
    kernel = get_kernel("compress")

    def compare():
        evaluator = Evaluator(KernelWorkload(kernel), cache=EvalCache())
        t0 = time.perf_counter()
        evaluator.sweep(**SWEEP)  # cold pass: populate the cache
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        plain = evaluator.sweep(**SWEEP)
        t_disabled = time.perf_counter() - t0

        obs.enable_profiling()
        try:
            with obs.collecting():
                t0 = time.perf_counter()
                profiled = evaluator.sweep(**SWEEP)
                t_enabled = time.perf_counter() - t0
        finally:
            obs.disable_profiling()

        with obs_trace.tracing("bench-trace"):
            t0 = time.perf_counter()
            traced = evaluator.sweep(**SWEEP)
            t_traced = time.perf_counter() - t0

        # Null-span microbenchmark: the per-stage cost while disabled.
        loops = 100_000
        t_null = timeit.timeit(
            lambda: span("trace_gen"), number=loops
        ) / loops
        return plain, profiled, traced, t_cold, t_disabled, t_enabled, \
            t_traced, t_null

    plain, profiled, traced, t_cold, t_disabled, t_enabled, t_traced, \
        t_null = benchmark.pedantic(compare, rounds=1, iterations=1)

    # Instrumentation must not change results.
    assert list(profiled) == list(plain)
    assert list(traced) == list(plain)

    n = len(list(plain))
    per_eval_s = t_disabled / n
    null_overhead = (SPANS_PER_EVAL * t_null) / per_eval_s
    enabled_overhead = (t_enabled - t_disabled) / t_disabled
    # Tracing cost per evaluation, relative to the cold evaluation a
    # traced job actually performs (the warm delta isolates pure
    # recording cost; the cold pass is the work it amortises against).
    tracing_overhead = ((t_traced - t_disabled) / n) / (t_cold / n)

    report(
        "perf_obs",
        f"Performance -- observability overhead (compress warm sweep, "
        f"{n} configs)",
        ("measure", "value"),
        [
            ("cold sweep (s)", round(t_cold, 5)),
            ("warm sweep, spans disabled (s)", round(t_disabled, 5)),
            ("warm sweep, spans enabled (s)", round(t_enabled, 5)),
            ("warm sweep, tracing active (s)", round(t_traced, 5)),
            ("null span cost (ns)", round(t_null * 1e9, 1)),
            ("disabled overhead per eval", round(null_overhead, 5)),
            ("enabled overhead (relative)", round(enabled_overhead, 5)),
            ("tracing overhead vs cold eval", round(tracing_overhead, 5)),
        ],
    )

    # The acceptance budgets: disabled instrumentation costs under 5% of
    # a warm evaluation (the thinnest pipeline the spans ever wrap), and
    # tracing costs under 10% of the cold evaluation it wraps in a real
    # traced job.
    assert null_overhead < OVERHEAD_BUDGET
    assert tracing_overhead < TRACING_BUDGET
