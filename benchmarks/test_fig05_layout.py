"""Figure 5: Compress -- miss-rate reduction from off-chip assignment at
C32L4, C64L8 and C128L16.

Paper claim: "the miss rate is significantly reduced if this memory
assignment algorithm is used".  The baselines use int (4-byte) elements,
whose dense 128-byte rows alias all three cache sizes -- the catastrophic
parenthesised numbers of Figure 9.
"""

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress

CONFIGS = [CacheConfig(32, 4), CacheConfig(64, 8), CacheConfig(128, 16)]


def run_comparison():
    kernel = make_compress(element_size=4)
    opt = MemExplorer(kernel, optimize_layout=True)
    unopt = MemExplorer(kernel, optimize_layout=False)
    return [
        (config, opt.evaluate(config), unopt.evaluate(config))
        for config in CONFIGS
    ]


def test_fig05_layout(benchmark, report):
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        (config.label(), e_opt.miss_rate, e_unopt.miss_rate,
         e_unopt.miss_rate / max(e_opt.miss_rate, 1e-12))
        for config, e_opt, e_unopt in comparison
    ]
    report(
        "fig05_layout",
        "Figure 5 -- Compress: miss rate, optimized vs unoptimized off-chip "
        "assignment",
        ("config", "optimized", "unoptimized", "ratio"),
        rows,
    )

    for config, e_opt, e_unopt in comparison:
        assert e_unopt.miss_rate > 0.5, config  # dense rows alias the cache
        assert e_opt.miss_rate < e_unopt.miss_rate / 1.9, config
        assert e_opt.conflict_free_layout
