"""Extension bench: sub-banked and phased cache organisations.

Two classic low-power circuit techniques from the literature the paper
builds on (Su/Despain; Kamble/Ghose): sub-banking precharges only the
accessed bank (E_cell / banks), phased access reads tags before data
(E_cell / ways at +1 hit cycle).  The bench re-runs the Compress grid under
each and shows the structural consequence: cheaper hit energy pushes the
minimum-energy configuration toward *larger* caches -- the energy argument
for small caches is exactly as strong as the monolithic-array assumption
behind it.
"""

from conftest import FIGURE_GRID

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.kernels import make_compress


def run_comparison():
    kernel = make_compress()
    results = {}
    for label, model in (
        ("monolithic", EnergyModel()),
        ("4-bank", EnergyModel(subbanks=4)),
    ):
        grid = [c for c in FIGURE_GRID if c.num_sets % 4 == 0 or label == "monolithic"]
        explorer = MemExplorer(kernel, energy_model=model)
        results[label] = explorer.explore(configs=grid)
    # Phased access on the associativity sweep (dense layout: conflicts
    # exist for ways to absorb; phased makes them affordable).
    phased = {}
    for label, model in (
        ("normal", EnergyModel()),
        ("phased", EnergyModel(phased=True)),
    ):
        explorer = MemExplorer(
            make_compress(element_size=4),
            energy_model=model,
            optimize_layout=False,
        )
        phased[label] = [
            explorer.evaluate(CacheConfig(64, 8, s)) for s in (1, 2, 4, 8)
        ]
    return results, phased


def test_ext_subbanking(benchmark, report):
    results, phased = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        best = result.min_energy()
        rows.append(("banking:" + label, best.config.label(),
                     round(best.energy_nj)))
    for label, estimates in phased.items():
        for est in estimates:
            rows.append((f"phased:{label}", est.config.label(full=True),
                         round(est.energy_nj)))
    report(
        "ext_subbanking",
        "Extension -- sub-banked arrays and phased access",
        ("variant", "config", "energy nJ"),
        rows,
    )

    mono_best = results["monolithic"].min_energy()
    banked_best = results["4-bank"].min_energy()
    # Cheaper hit energy: the banked optimum is never a smaller cache, and
    # every shared configuration costs less.
    assert banked_best.config.size >= mono_best.config.size
    for est in results["4-bank"]:
        assert est.energy_nj <= results["monolithic"].for_config(
            est.config
        ).energy_nj + 1e-6
    # Phased access strictly cheaper wherever ways > 1.
    for normal, cheap in zip(phased["normal"], phased["phased"]):
        if normal.config.ways > 1:
            assert cheap.energy_nj < normal.energy_nj
        else:
            assert cheap.energy_nj == normal.energy_nj
