"""Extension bench: cache vs scratchpad across on-chip budgets.

The Panda/Dutt comparison the paper's cache exploration sits inside: for
each on-chip byte budget, should the designer buy a cache or a tagless
scratchpad?

Measured shape under the shared energy model: because the paper charges
``Em * L`` per miss, a cache's line refills never amortise *energy* over
off-chip traffic -- so the scratchpad wins energy at every budget -- while
the cache's automatic spatial locality amortises *latency*, so it wins
cycles until the scratchpad can hold the working set outright.  The
crossover where the scratchpad takes both metrics is exactly the point
where the kernel's arrays fit on chip -- Panda/Dutt's core result.
"""

from repro.kernels import make_dequant, make_matadd
from repro.spm.explorer import compare_cache_vs_spm

BUDGETS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def run_comparison():
    return {
        kernel.name: compare_cache_vs_spm(kernel, budgets=BUDGETS)
        for kernel in (make_matadd(), make_dequant())
    }


def test_ext_scratchpad(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, comparison in results.items():
        for row in comparison:
            rows.append(
                (
                    name,
                    row.budget,
                    round(row.cache.energy_nj),
                    round(row.spm.energy_nj),
                    row.spm.hit_fraction,
                    row.energy_winner,
                )
            )
    report(
        "ext_scratchpad",
        "Extension -- cache vs scratchpad energy per on-chip budget",
        ("kernel", "budget", "cache nJ", "spm nJ", "spm hit", "winner"),
        rows,
    )

    # Energy: the scratchpad wins at every budget (Em*L refills never
    # amortise energy under the paper's model).
    for name, comparison in results.items():
        assert all(row.energy_winner == "spm" for row in comparison), name

    # Cycles: the cache wins while the arrays don't fit, the scratchpad
    # takes over exactly when they do.
    matadd = {row.budget: row for row in results["matadd"]}
    assert matadd[16].cycle_winner == "cache"     # nothing fits yet
    assert matadd[128].spm.hit_fraction == 1.0    # 108 B of arrays fit
    assert matadd[128].cycle_winner == "spm"

    dequant = {row.budget: row for row in results["dequant"]}
    assert dequant[64].cycle_winner == "cache"    # all-off-chip scratchpad
    assert dequant[2048].spm.hit_fraction > 0.5   # two of three arrays
    assert dequant[2048].cycle_winner == "cache"  # ...but still too slow
    assert dequant[4096].cycle_winner == "spm"    # full fit flips it
