"""Shared helpers for the figure-reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
exploration inside the ``benchmark`` fixture (timing the harness), prints
the regenerated rows, writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can cite them, and asserts the *shape* the paper reports
(who wins, trend directions, crossovers).
"""

import sys
from pathlib import Path
from typing import Iterable, Sequence

import pytest

from repro.core.config import CacheConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: The (T, L) grid of Figures 1-4.
FIGURE_GRID = [
    CacheConfig(t, l)
    for t in (16, 32, 64, 128, 256, 512)
    for l in (4, 8, 16, 32, 64)
    if l <= t
]

#: The four kernel-grid configurations of Figure 2.
FIG2_CONFIGS = [
    CacheConfig(16, 4),
    CacheConfig(32, 8),
    CacheConfig(64, 16),
    CacheConfig(128, 32),
]


@pytest.fixture
def report():
    """Write (and echo) a regenerated table under benchmarks/results/."""

    def _write(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]):
        RESULTS_DIR.mkdir(exist_ok=True)
        widths = [max(len(str(h)), 12) for h in header]
        lines = [title, ""]
        lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append(
                "  ".join(
                    (f"{v:.4f}" if isinstance(v, float) else str(v)).rjust(w)
                    for v, w in zip(row, widths)
                )
            )
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        sys.stdout.write("\n" + text)

    return _write
