"""Search-quality benchmark: NSGA-II front vs the exhaustive sweep.

The acceptance bar of the multi-objective subsystem: on the dense
compress design grid, the seeded NSGA-II search must recover at least
95% of the exhaustive front's hypervolume while requesting at most 10%
of the grid's evaluations.  Both hypervolumes are measured against the
*exhaustive* reference point, so the ratio is honest -- the search
cannot inflate its score by deriving a tighter reference from its own
first generation.  The unseeded run rides along as the ablation of
analytic seeding; the timing rows feed the CI perf gate.
"""

import time

from repro.core.config import design_space
from repro.core.pareto import hypervolume, pareto_points
from repro.engine import Evaluator, KernelWorkload
from repro.kernels import get_kernel
from repro.moo import SearchSettings, objective_vector, run_search
from repro.moo.objectives import reference_point

SPACE = list(design_space(max_size=1024, min_size=16))
SETTINGS = dict(generations=8, population=8, seed=0)


def _evaluator():
    return Evaluator(KernelWorkload(get_kernel("compress")))


def test_perf_moo_quality(benchmark, report):
    def compare():
        t0 = time.perf_counter()
        evaluator = _evaluator()
        estimates = [evaluator.evaluate(config) for config in SPACE]
        t_full = time.perf_counter() - t0
        vectors = [objective_vector(e) for e in estimates]
        reference = reference_point(vectors)
        true_hv = hypervolume(pareto_points(vectors), reference)

        t0 = time.perf_counter()
        seeded = run_search(
            _evaluator(), SPACE, SearchSettings(**SETTINGS)
        )
        t_seeded = time.perf_counter() - t0

        t0 = time.perf_counter()
        unseeded = run_search(
            _evaluator(),
            SPACE,
            SearchSettings(**SETTINGS, seed_population=False),
        )
        t_unseeded = time.perf_counter() - t0

        return (
            (true_hv, reference, t_full),
            (seeded, t_seeded),
            (unseeded, t_unseeded),
        )

    (true_hv, reference, t_full), (seeded, t_seeded), (unseeded, t_unseeded) = (
        benchmark.pedantic(compare, rounds=1, iterations=1)
    )

    def ratio(run):
        points = [objective_vector(e) for e in run.front]
        return hypervolume(points, reference) / true_hv

    seeded_ratio = ratio(seeded)
    unseeded_ratio = ratio(unseeded)

    # The tentpole claim: >=95% of the exhaustive hypervolume for <=10%
    # of the evaluations.
    assert seeded_ratio >= 0.95
    assert seeded.evaluations <= 0.10 * len(SPACE)
    # The evolutionary search carries its weight even without seeding.
    assert unseeded_ratio >= 0.90

    n = len(SPACE)
    report(
        "perf_moo",
        f"Performance -- NSGA-II search vs exhaustive sweep (compress, "
        f"{n}-config grid, hypervolume against the exhaustive reference)",
        ("path", "seconds", "evals", "evals_pct", "hv_pct"),
        [
            (
                "exhaustive sweep",
                round(t_full, 5),
                n,
                "100.0",
                "100.00",
            ),
            (
                "nsga2, analytic seeding",
                round(t_seeded, 5),
                seeded.evaluations,
                f"{100.0 * seeded.evaluations / n:.1f}",
                f"{100.0 * seeded_ratio:.2f}",
            ),
            (
                "nsga2, unseeded",
                round(t_unseeded, 5),
                unseeded.evaluations,
                f"{100.0 * unseeded.evaluations / n:.1f}",
                f"{100.0 * unseeded_ratio:.2f}",
            ),
        ],
    )
