"""Performance benchmark: the cost of fault tolerance.

The resilience layer must be cheap enough to leave on for real sweeps:

* journaling every completed chunk (flush + fsync per chunk) is measured
  against the identical un-journaled sweep -- the durability tax;
* resuming from a complete journal is measured absolutely -- a resumed
  sweep does no evaluation, so its cost is pure journal parsing, and it
  bounds how fast a killed exploration gets back to where it died;
* both paths must return bit-identical estimates, asserted here like
  every other executor bench.
"""

import time

from repro.engine import (
    EvalCache,
    Evaluator,
    KernelWorkload,
    ParallelSweep,
    ResilienceOptions,
)
from repro.kernels import get_kernel

SWEEP = dict(max_size=256, min_size=16, ways=(1, 2, 4), tilings=(1, 2))


def test_perf_resilience_overhead(benchmark, report, tmp_path):
    kernel = get_kernel("compress")
    path = str(tmp_path / "bench.jsonl")

    def compare():
        evaluator = Evaluator(KernelWorkload(kernel), cache=EvalCache())
        evaluator.sweep(**SWEEP)  # cold pass: populate the cache
        configs = [e.config for e in evaluator.sweep(**SWEEP)]

        t0 = time.perf_counter()
        plain = ParallelSweep(jobs=1).run(evaluator, configs)
        t_plain = time.perf_counter() - t0

        t0 = time.perf_counter()
        journaled = ParallelSweep(
            jobs=1, resilience=ResilienceOptions(checkpoint=path)
        ).run(evaluator, configs)
        t_journaled = time.perf_counter() - t0

        t0 = time.perf_counter()
        resumed = ParallelSweep(
            jobs=1,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        ).run(evaluator, configs)
        t_resumed = time.perf_counter() - t0

        return plain, journaled, resumed, t_plain, t_journaled, t_resumed

    plain, journaled, resumed, t_plain, t_journaled, t_resumed = (
        benchmark.pedantic(compare, rounds=1, iterations=1)
    )

    # Durability must not change results -- on either path.
    assert journaled == plain
    assert resumed == plain

    n = len(plain)
    report(
        "perf_resilience",
        f"Performance -- sweep resilience (compress warm sweep, "
        f"{n} configs)",
        ("path", "seconds", "configs/s"),
        [
            ("warm, no journal", round(t_plain, 5), round(n / t_plain)),
            ("warm, journaled", round(t_journaled, 5), round(n / t_journaled)),
            ("resumed, complete journal", round(t_resumed, 5),
             round(n / t_resumed)),
        ],
    )

    # Resume never re-evaluates: it must beat the evaluating sweep.
    assert t_resumed < t_journaled
