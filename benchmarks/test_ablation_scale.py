"""Ablation: sensitivity to the single calibration constant.

``TechnologyParams.capacitive_scale_nj`` converts the paper's
alpha/beta/gamma switching weights into nanojoules (see
repro/energy/params.py).  This ablation halves and doubles it and checks
that every qualitative claim survives: the Em trend flip, the C16L4
minimum-energy anchor at the default Em, and the min-energy/min-time
separation.
"""

from conftest import FIGURE_GRID

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import (
    CAPACITIVE_SCALE,
    LOW_POWER_2MBIT,
    SRAM_16MBIT,
    TechnologyParams,
)
from repro.kernels import make_compress

SCALES = (CAPACITIVE_SCALE / 2, CAPACITIVE_SCALE, CAPACITIVE_SCALE * 2)


def run_sweep():
    outcome = {}
    for scale in SCALES:
        tech = TechnologyParams(capacitive_scale_nj=scale)
        for sram in (LOW_POWER_2MBIT, SRAM_16MBIT):
            explorer = MemExplorer(
                make_compress(), energy_model=EnergyModel(tech=tech, sram=sram)
            )
            result = explorer.explore(configs=FIGURE_GRID)
            outcome[(scale, sram.energy_per_access_nj)] = result
    return outcome


def test_ablation_scale(benchmark, report):
    outcome = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for (scale, em), result in sorted(outcome.items()):
        best_e = result.min_energy()
        best_t = result.min_cycles()
        rows.append(
            (scale, em, best_e.config.label(), round(best_e.energy_nj),
             best_t.config.label())
        )
    report(
        "ablation_scale",
        "Ablation -- calibration-scale sensitivity (Compress)",
        ("scale", "Em", "min-E config", "energy nJ", "min-T config"),
        rows,
    )

    for scale in SCALES:
        low = outcome[(scale, 2.31)]
        high = outcome[(scale, 43.56)]
        # The Em flip survives a 4x swing of the calibration constant.
        assert low.min_energy().config == CacheConfig(16, 4), scale
        assert high.min_energy().config.size > 16, scale
        # Min-energy and min-time stay separated.
        assert low.min_energy().config != low.min_cycles().config, scale
