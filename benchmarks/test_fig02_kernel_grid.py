"""Figure 2: miss rate, cycles and energy for the five benchmarks across
the C16L4 / C32L8 / C64L16 / C128L32 diagonal (Em = 4.95 nJ).

Paper claim: the miss rate (and with it the cycle count) falls as the
cache/line pair grows for every kernel.
"""

from conftest import FIG2_CONFIGS

from repro.core.explorer import MemExplorer
from repro.kernels import paper_kernels


def run_grid():
    table = {}
    for kernel in paper_kernels():
        explorer = MemExplorer(kernel)
        table[kernel.name] = [explorer.evaluate(c) for c in FIG2_CONFIGS]
    return table


def test_fig02_kernel_grid(benchmark, report):
    table = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for name, estimates in table.items():
        for est in estimates:
            rows.append(
                (
                    name,
                    est.config.label(),
                    est.miss_rate,
                    round(est.cycles),
                    round(est.energy_nj),
                )
            )
    report(
        "fig02_kernel_grid",
        "Figure 2 -- five kernels: miss rate / cycles / energy on the "
        "C16L4..C128L32 diagonal (Em=4.95)",
        ("kernel", "config", "miss rate", "cycles", "energy nJ"),
        rows,
    )

    for name, estimates in table.items():
        mrs = [e.miss_rate for e in estimates]
        cycles = [e.cycles for e in estimates]
        # The diagonal improves every kernel end to end; for the compatible
        # kernels (conflict-free layouts) the improvement is monotone.
        # Matrix Multiplication is incompatible, so its residual conflict
        # misses wobble between geometries (real-simulator deviation from
        # the paper's conflict-free analytic model).
        assert mrs[-1] < mrs[0], name
        assert cycles[-1] < cycles[0], name
        if name != "matmul":
            assert all(b <= a + 1e-9 for a, b in zip(mrs, mrs[1:])), name
