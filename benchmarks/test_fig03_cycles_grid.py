"""Figure 3: Compress -- processor cycles over the full (T, L) grid.

Paper claim: the cycle count falls as cache size and line size grow (while
the number of cache lines stays >= 4, the Section 3 minimum); the
minimum-time configuration has the largest cache and longest lines.
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.kernels import make_compress


def run_grid():
    explorer = MemExplorer(make_compress())
    return explorer.explore(configs=FIGURE_GRID)


def test_fig03_cycles_grid(benchmark, report):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        (e.config.size, e.config.line_size, e.miss_rate, round(e.cycles))
        for e in result
    ]
    report(
        "fig03_cycles_grid",
        "Figure 3 -- Compress: cycles vs cache size and line size",
        ("T", "L", "miss rate", "cycles"),
        rows,
    )

    by_config = {e.config: e for e in result}
    from repro.core.config import CacheConfig

    # Within the conflict-free region (lines >= 4), cycles fall with T and L.
    feasible = {
        c: e for c, e in by_config.items() if c.num_lines >= 4
    }
    for config, est in feasible.items():
        bigger = CacheConfig(config.size * 2, config.line_size)
        if bigger in feasible:
            assert feasible[bigger].cycles <= est.cycles + 1e-6
    # Minimum time lives at the large end of the grid.
    best = result.min_cycles().config
    assert best.size >= 64 and best.line_size >= 32
