"""Extension bench: instruction-cache exploration (Kirovski merge).

The paper's introduction proposes extending the data-cache exploration to
instruction caches.  This bench builds a loop-dominated basic-block program
(a decoder-style main loop with a cold error path), explores the
instruction-cache space, and checks the expected shape: the knee sits where
the cache first holds the hot loop, and energy is minimised at that knee
rather than at the largest cache.
"""

from repro.core.config import design_space
from repro.icache.blocks import ControlFlowTrace, Program
from repro.icache.explorer import ICacheExplorer


def build_execution():
    program = Program.sequential(
        [
            ("init", 16),
            ("loop_head", 4),
            ("decode", 24),
            ("writeback", 8),
            ("loop_tail", 4),
            ("cold_error", 32),
        ]
    )
    body = ["loop_head", "decode", "writeback", "loop_tail"]
    return ControlFlowTrace.loop(
        program, body, iterations=200, prologue=["init"], epilogue=["cold_error"]
    )


def run_exploration():
    execution = build_execution()
    explorer = ICacheExplorer(execution)
    configs = list(
        design_space(max_size=512, min_size=32, min_line=8, max_line=32,
                     ways=(1, 2), tilings=(1,))
    )
    return execution, explorer.explore(configs=configs)


def test_ext_icache(benchmark, report):
    execution, result = benchmark.pedantic(run_exploration, rounds=1, iterations=1)
    rows = [
        (e.config.label(full=True), e.miss_rate, round(e.cycles),
         round(e.energy_nj))
        for e in result
    ]
    report(
        "ext_icache",
        "Extension -- instruction-cache exploration of a loop-dominated "
        "program",
        ("config", "miss rate", "cycles", "energy nJ"),
        rows,
    )

    hot_loop_bytes = (4 + 24 + 8 + 4) * 4  # 160 bytes
    big_enough = [e for e in result if e.config.size >= 256]
    too_small = [e for e in result if e.config.size < hot_loop_bytes / 2]
    assert big_enough and too_small
    # Once the loop fits, essentially everything hits.
    assert min(e.miss_rate for e in big_enough) < 0.01
    # Well below the loop size, the stream misses heavily by comparison.
    assert max(e.miss_rate for e in too_small) > 10 * min(
        e.miss_rate for e in big_enough
    )
    # Energy is NOT minimised by the largest cache: the knee wins.
    best = result.min_energy().config
    assert best.size < 512
