"""Performance benchmark: the unified evaluation engine.

Times what :mod:`repro.engine` adds over the old per-explorer pipelines:

* the process-wide :class:`~repro.engine.cache.EvalCache` -- a warm sweep
  re-runs the full pipeline against memoised traces and miss vectors, so
  its throughput bounds the cost of everything *outside* simulation;
* the :class:`~repro.engine.parallel.ParallelSweep` executor -- serial
  versus ``jobs=2`` on the same sweep.  On a single-core machine the
  process fan-out is pure overhead; the recorded numbers state that
  honestly (the engine's value there is the transparent serial fallback
  and the unchanged results, which this bench asserts bit for bit);
* the one-pass grid backend -- a cold (sets, ways) grid sweep through
  ``onepass`` versus the serial per-config ``fastsim`` baseline, on a
  fixed trace so simulation (not trace generation) dominates.  The CI
  perf job gates on the recorded speedup.
"""

import os
import time

import numpy as np

from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig
from repro.engine import (
    EvalCache,
    Evaluator,
    KernelWorkload,
    TraceWorkload,
)
from repro.kernels import get_kernel

SWEEP = dict(max_size=256, min_size=16, ways=(1, 2, 4), tilings=(1, 2))


def test_perf_engine_sweep(benchmark, report):
    kernel = get_kernel("compress")

    def compare():
        cold_cache = EvalCache()
        evaluator = Evaluator(KernelWorkload(kernel), cache=cold_cache)

        t0 = time.perf_counter()
        cold = evaluator.sweep(**SWEEP)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = evaluator.sweep(**SWEEP)
        t_warm = time.perf_counter() - t0

        parallel_evaluator = Evaluator(
            KernelWorkload(kernel), cache=EvalCache()
        )
        t0 = time.perf_counter()
        par = parallel_evaluator.sweep(jobs=2, **SWEEP)
        t_parallel = time.perf_counter() - t0

        return cold, warm, par, t_cold, t_warm, t_parallel, cold_cache.stats()

    cold, warm, par, t_cold, t_warm, t_parallel, stats = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    # Hard requirements first: every path returns identical estimates.
    assert list(warm) == list(cold)
    assert list(par) == list(cold)

    n = len(list(cold))
    report(
        "perf_engine",
        f"Performance -- evaluation engine (compress sweep, {n} configs, "
        f"{os.cpu_count()} CPU(s))",
        ("path", "seconds", "configs/s"),
        [
            ("serial, cold cache", round(t_cold, 5), round(n / t_cold)),
            ("serial, warm cache", round(t_warm, 5), round(n / t_warm)),
            ("2 processes, cold", round(t_parallel, 5), round(n / t_parallel)),
        ],
    )
    # Append the cache behaviour to the same results file: both tables are
    # one story (the warm throughput IS the hit rate made visible).
    from conftest import RESULTS_DIR

    cache_lines = [
        "",
        "EvalCache behaviour over the cold+warm sweeps",
        "",
        f"{'store':>22}  {'hits':>6}  {'misses':>6}  {'hit rate':>8}",
        f"{'traces (T,L,B)':>22}  {stats.trace_hits:>6}  "
        f"{stats.trace_misses:>6}  {stats.trace_hit_rate:>8.4f}",
        f"{'miss vectors / Add_bs':>22}  {stats.miss_hits:>6}  "
        f"{stats.miss_misses:>6}  {stats.miss_hit_rate:>8.4f}",
    ]
    path = RESULTS_DIR / "perf_engine.txt"
    path.write_text(path.read_text() + "\n".join(cache_lines) + "\n")

    # The warm sweep must profit from the cache: every trace and miss
    # vector the second pass needed was already resident.
    assert stats.trace_hit_rate > 0.5
    assert stats.miss_hit_rate > 0.4
    assert t_warm < t_cold


# The one-pass grid: every (sets, ways) point of a fixed line size, on a
# fixed trace.  Sizes are chosen so each distinct set count serves the
# whole ways range -- the shape explore/serve grids have -- and the trace
# mixes a hot working set with a drifting scan so every associativity
# level stays populated.
ONEPASS_LINE = 8
ONEPASS_GRID = [
    CacheConfig(ONEPASS_LINE * ways * sets, ONEPASS_LINE, ways)
    for ways in (1, 2, 4, 8, 16)
    for sets in (16, 32, 64, 128, 256)
]


def _onepass_trace(n=60_000):
    rng = np.random.default_rng(19991231)
    hot = rng.integers(0, 1024, size=n)
    scan = np.cumsum(rng.integers(-2, 3, size=n)) % 4096
    lines = np.where(rng.random(n) < 0.5, hot, scan)
    return MemoryTrace(lines * ONEPASS_LINE, rng.random(n) < 0.3)


def test_perf_onepass_cold_sweep(benchmark, report):
    trace = _onepass_trace()

    def compare():
        serial = Evaluator(
            TraceWorkload(trace), backend="fastsim", cache=EvalCache()
        )
        t0 = time.perf_counter()
        baseline = serial.sweep(configs=ONEPASS_GRID)
        t_serial = time.perf_counter() - t0

        grouped = Evaluator(
            TraceWorkload(trace), backend="onepass", cache=EvalCache()
        )
        t0 = time.perf_counter()
        onepass = grouped.sweep(configs=ONEPASS_GRID)
        t_onepass = time.perf_counter() - t0
        return baseline, onepass, t_serial, t_onepass

    baseline, onepass, t_serial, t_onepass = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    # Correctness before speed: the grid path is bit-identical.
    assert list(onepass) == list(baseline)

    n = len(ONEPASS_GRID)
    speedup = t_serial / t_onepass
    report(
        "perf_onepass",
        f"Performance -- one-pass grid backend (fixed {len(trace)}-access "
        f"trace, {n}-config (sets, ways) grid at L={ONEPASS_LINE})",
        ("path", "seconds", "configs/s"),
        [
            ("serial cold, fastsim", round(t_serial, 5), round(n / t_serial)),
            ("grouped cold, onepass", round(t_onepass, 5),
             round(n / t_onepass)),
        ],
    )
    from conftest import RESULTS_DIR

    path = RESULTS_DIR / "perf_onepass.txt"
    path.write_text(
        path.read_text()
        + f"\none-pass speedup over serial cold: {speedup:.1f}x"
        + " (CI gate: >= 5x)\n"
    )

    # The CI perf job's cold-sweep gate: one-pass must beat the serial
    # cold baseline by at least 5x on this grid (typically >10x).
    assert speedup >= 5.0
