"""Performance benchmark: the unified evaluation engine.

Times what :mod:`repro.engine` adds over the old per-explorer pipelines:

* the process-wide :class:`~repro.engine.cache.EvalCache` -- a warm sweep
  re-runs the full pipeline against memoised traces and miss vectors, so
  its throughput bounds the cost of everything *outside* simulation;
* the :class:`~repro.engine.parallel.ParallelSweep` executor -- serial
  versus ``jobs=2`` on the same sweep.  On a single-core machine the
  process fan-out is pure overhead; the recorded numbers state that
  honestly (the engine's value there is the transparent serial fallback
  and the unchanged results, which this bench asserts bit for bit).
"""

import os
import time

from repro.engine import EvalCache, Evaluator, KernelWorkload
from repro.kernels import get_kernel

SWEEP = dict(max_size=256, min_size=16, ways=(1, 2, 4), tilings=(1, 2))


def test_perf_engine_sweep(benchmark, report):
    kernel = get_kernel("compress")

    def compare():
        cold_cache = EvalCache()
        evaluator = Evaluator(KernelWorkload(kernel), cache=cold_cache)

        t0 = time.perf_counter()
        cold = evaluator.sweep(**SWEEP)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = evaluator.sweep(**SWEEP)
        t_warm = time.perf_counter() - t0

        parallel_evaluator = Evaluator(
            KernelWorkload(kernel), cache=EvalCache()
        )
        t0 = time.perf_counter()
        par = parallel_evaluator.sweep(jobs=2, **SWEEP)
        t_parallel = time.perf_counter() - t0

        return cold, warm, par, t_cold, t_warm, t_parallel, cold_cache.stats()

    cold, warm, par, t_cold, t_warm, t_parallel, stats = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    # Hard requirements first: every path returns identical estimates.
    assert list(warm) == list(cold)
    assert list(par) == list(cold)

    n = len(list(cold))
    report(
        "perf_engine",
        f"Performance -- evaluation engine (compress sweep, {n} configs, "
        f"{os.cpu_count()} CPU(s))",
        ("path", "seconds", "configs/s"),
        [
            ("serial, cold cache", round(t_cold, 5), round(n / t_cold)),
            ("serial, warm cache", round(t_warm, 5), round(n / t_warm)),
            ("2 processes, cold", round(t_parallel, 5), round(n / t_parallel)),
        ],
    )
    # Append the cache behaviour to the same results file: both tables are
    # one story (the warm throughput IS the hit rate made visible).
    from conftest import RESULTS_DIR

    cache_lines = [
        "",
        "EvalCache behaviour over the cold+warm sweeps",
        "",
        f"{'store':>22}  {'hits':>6}  {'misses':>6}  {'hit rate':>8}",
        f"{'traces (T,L,B)':>22}  {stats.trace_hits:>6}  "
        f"{stats.trace_misses:>6}  {stats.trace_hit_rate:>8.4f}",
        f"{'miss vectors / Add_bs':>22}  {stats.miss_hits:>6}  "
        f"{stats.miss_misses:>6}  {stats.miss_hit_rate:>8.4f}",
    ]
    path = RESULTS_DIR / "perf_engine.txt"
    path.write_text(path.read_text() + "\n".join(cache_lines) + "\n")

    # The warm sweep must profit from the cache: every trace and miss
    # vector the second pass needed was already resident.
    assert stats.trace_hit_rate > 0.5
    assert stats.miss_hit_rate > 0.4
    assert t_warm < t_cold
