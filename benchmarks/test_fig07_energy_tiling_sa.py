"""Figure 7: energy vs tiling size and vs set associativity for Compress
and Dequant.

Paper claim: energy falls with tiling up to the number of cache lines (8 at
C64L8) and rises past it; energy falls (or at worst flattens) as the
associativity absorbs conflicts.  The associativity panel uses the dense
(unoptimized) layout -- with conflicts already eliminated by Section 4.1
there is nothing left for ways to absorb, which is the paper's own Section
4.3 caveat ("the number of processor cycles as well as the energy values do
not necessarily decrease").
"""

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant, make_matmul

TILINGS = (1, 2, 4, 8, 16)
WAYS = (1, 2, 4, 8)


def run_sweeps():
    tiling_panel = {}
    explorer = MemExplorer(make_matmul())
    tiling_panel["matmul@C256L16"] = [
        explorer.evaluate(CacheConfig(256, 16, 1, b)) for b in TILINGS
    ]
    for make in (make_compress, make_dequant):
        kernel = make()
        explorer = MemExplorer(kernel)
        tiling_panel[f"{kernel.name}@C64L8"] = [
            explorer.evaluate(CacheConfig(64, 8, 1, b)) for b in TILINGS
        ]
    sa_panel = {}
    for make in (make_compress, make_dequant):
        kernel = make()
        explorer = MemExplorer(kernel, optimize_layout=False)
        sa_panel[kernel.name] = [
            explorer.evaluate(CacheConfig(64, 8, s, 1)) for s in WAYS
        ]
    return tiling_panel, sa_panel


def test_fig07_energy_tiling_sa(benchmark, report):
    tiling_panel, sa_panel = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    rows = []
    for label, estimates in tiling_panel.items():
        for est in estimates:
            rows.append((label, f"B{est.config.tiling}", est.miss_rate,
                         round(est.energy_nj)))
    for name, estimates in sa_panel.items():
        for est in estimates:
            rows.append((f"{name}@C64L8-unopt", f"S{est.config.ways}",
                         est.miss_rate, round(est.energy_nj)))
    report(
        "fig07_energy_tiling_sa",
        "Figure 7 -- energy vs tiling size and vs set associativity",
        ("workload", "sweep", "miss rate", "energy nJ"),
        rows,
    )

    # Tiling panel: the reuse kernel shows the paper's U shape.
    matmul = {e.config.tiling: e for e in tiling_panel["matmul@C256L16"]}
    assert matmul[8].energy_nj < matmul[1].energy_nj
    assert matmul[16].energy_nj > matmul[8].energy_nj
    # Associativity panel: Dequant's three aliasing streams need ways.
    dequant = {e.config.ways: e for e in sa_panel["dequant"]}
    assert dequant[4].energy_nj < dequant[1].energy_nj
    assert dequant[4].miss_rate < dequant[1].miss_rate / 2
