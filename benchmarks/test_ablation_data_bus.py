"""Ablation: data-bus switching activity.

The paper assumes a fixed data-bus switching value (the exact constant is
lost in the archived text; 0.5 activity is the Su/Despain convention this
reproduction defaults to).  This ablation sweeps the activity factor and
checks that the minimum-energy configuration is stable across the entire
plausible range -- i.e. nothing in the reproduction hinges on the garbled
constant.
"""

from conftest import FIGURE_GRID

from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import TechnologyParams
from repro.kernels import make_compress

ACTIVITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_sweep():
    outcome = []
    for activity in ACTIVITIES:
        tech = TechnologyParams().with_activity(activity)
        explorer = MemExplorer(make_compress(), energy_model=EnergyModel(tech=tech))
        result = explorer.explore(configs=FIGURE_GRID)
        outcome.append((activity, result))
    return outcome


def test_ablation_data_bus(benchmark, report):
    outcome = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for activity, result in outcome:
        best = result.min_energy()
        rows.append((activity, best.config.label(), round(best.energy_nj)))
    report(
        "ablation_data_bus",
        "Ablation -- data-bus activity factor (Compress, Em=4.95)",
        ("activity", "min-E config", "energy nJ"),
        rows,
    )

    configs = {result.min_energy().config for _, result in outcome}
    assert len(configs) == 1  # the winner never changes
    energies = [result.min_energy().energy_nj for _, result in outcome]
    assert energies == sorted(energies)  # more switching, more energy
