"""Section 5: whole-decoder exploration of the MPEG case study.

Paper claims (with its numbers): the decoder-wide minimum-energy
configuration (C64 L4 S8 B16; 293,000 nJ at 142,000 cycles) differs from
the minimum-time configuration (C512 L16 S8 B8; 121,000 cycles at
1,110,000 nJ), and the whole-program optimum differs from the kernels'
individual optima (Figure 10).
"""

from repro.core.composite import CompositeProgram
from repro.core.config import design_space
from repro.kernels import mpeg_decoder_kernels


def configs():
    return list(
        design_space(
            max_size=512,
            min_size=16,
            max_line=16,
            ways=(1, 2, 4, 8),
            tilings=(1, 2, 4, 8, 16),
        )
    )


def run_case_study():
    program = CompositeProgram(mpeg_decoder_kernels(macroblocks=8))
    space = configs()
    result = program.explore(space)
    optima = CompositeProgram(
        mpeg_decoder_kernels(macroblocks=2)
    ).per_kernel_optima(space)
    return result, optima


def test_sec5_mpeg_composite(benchmark, report):
    result, optima = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    min_e = result.min_energy()
    min_t = result.min_cycles()
    rows = [
        ("min-energy", min_e.config.label(full=True), round(min_e.energy_nj),
         round(min_e.cycles)),
        ("min-time", min_t.config.label(full=True), round(min_t.energy_nj),
         round(min_t.cycles)),
    ]
    for name, (config, energy) in optima.items():
        rows.append((f"kernel:{name}", config.label(full=True), round(energy), "--"))
    report(
        "sec5_mpeg_composite",
        "Section 5 -- MPEG decoder: whole-program optima vs per-kernel optima "
        "(paper: min-E C64L4S8B16 @ 293k nJ / 142k cyc; min-T C512L16S8B8 @ "
        "121k cyc / 1.11M nJ)",
        ("role", "config", "energy nJ", "cycles"),
        rows,
    )

    # The headline separations.
    assert min_e.config != min_t.config
    assert min_t.cycles < min_e.cycles
    assert min_e.energy_nj < min_t.energy_nj
    # Shape against the paper's numbers: the min-time configuration is a
    # large cache with 16-byte lines (paper: C512L16; here C256-C512L16 --
    # our simulated miss rates saturate one size earlier); its energy is
    # several times the minimum-energy point's.
    assert min_t.config.size >= 256
    assert min_t.config.line_size == 16
    assert min_t.energy_nj / min_e.energy_nj > 2.0
    # Min-energy prefers a small cache with short lines.
    assert min_e.config.size <= 128
    assert min_e.config.line_size == 4
    # The whole-program optimum is not a copy of every kernel's optimum.
    assert any(cfg != min_e.config for cfg, _ in optima.values())
