"""The instruction side: i-cache exploration and code placement.

The paper's introduction proposes extending the data-cache exploration to
instruction caches by merging Kirovski et al.'s application-driven method.
This example does both halves:

1. explore the instruction-cache space for a loop-dominated decoder
   program (where is the knee?), and
2. apply the code-side analogue of Section 4.1 -- relocating basic blocks
   so the hot path never conflicts with itself -- and measure the win.

Run with::

    python examples/icache_codeplacement.py
"""

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.core.config import CacheConfig
from repro.icache import (
    BasicBlock,
    ControlFlowTrace,
    ICacheExplorer,
    Program,
    place_blocks,
)


def build_decoder_program() -> ControlFlowTrace:
    """A decoder-shaped program whose hot pair aliases in a small cache."""
    program = Program(
        (
            BasicBlock("init", 0, 16),
            BasicBlock("parse_header", 64, 8),
            # The hot decode pair sits exactly one 256-byte span apart:
            BasicBlock("decode_block", 128, 16),
            BasicBlock("write_pixels", 128 + 256, 16),
            BasicBlock("error_path", 1024, 32),
        )
    )
    body = ["decode_block", "write_pixels"]
    return ControlFlowTrace.loop(
        program, body, iterations=300,
        prologue=["init", "parse_header"], epilogue=["error_path"],
    )


def main() -> None:
    execution = build_decoder_program()
    print(f"dynamic instructions: {execution.dynamic_instructions}")
    print(f"block frequencies   : {execution.block_frequencies()}\n")

    print("=== i-cache exploration (original code layout) ===")
    explorer = ICacheExplorer(execution)
    result = explorer.explore(max_size=1024, min_size=64, min_line=16,
                              max_line=32, ways=(1, 2))
    for estimate in result:
        print(f"  {estimate.config.label(full=True):>14s} "
              f"mr={estimate.miss_rate:.4f} energy={estimate.energy_nj:.0f} nJ")
    print(f"  minimum energy: {result.min_energy().config}\n")

    cache_size, line_size = 256, 16
    print(f"=== code placement at C{cache_size}L{line_size} ===")
    before = CacheSimulator(CacheGeometry(cache_size, line_size, 1)).run(
        execution.fetch_trace()
    )
    placement = place_blocks(execution, cache_size, line_size)
    relocated = ControlFlowTrace(placement.program, execution.sequence)
    after = CacheSimulator(CacheGeometry(cache_size, line_size, 1)).run(
        relocated.fetch_trace()
    )
    print(f"miss rate before placement: {before.miss_rate:.4f}")
    print(f"miss rate after placement : {after.miss_rate:.4f}")
    print(f"padding inserted          : {placement.padding_bytes} bytes")
    for block in sorted(placement.program.blocks, key=lambda b: b.address):
        print(f"  {block.name:>14s} @ {block.address}")
    print(
        "\nThe hot decode pair aliased one cache span apart; relocation "
        "packs it into disjoint lines -- Section 4.1's padding trick, "
        "applied to code."
    )


if __name__ == "__main__":
    main()
