"""Quickstart: explore the data-cache design space for one kernel.

Runs Algorithm MemExplore over the paper's Compress kernel, prints the
(T, L) grid of miss rate / cycles / energy, and reports the minimum-energy
and minimum-time configurations plus the energy-time Pareto frontier.

Run with::

    python examples/quickstart.py
"""

from repro import CacheConfig, MemExplorer, get_kernel, pareto_front


def main() -> None:
    kernel = get_kernel("compress")
    print(f"kernel: {kernel.nest}")
    print(f"one invocation = {kernel.nest.iterations} iterations, "
          f"{kernel.accesses_per_invocation} memory accesses\n")

    explorer = MemExplorer(kernel)
    grid = [
        CacheConfig(size, line)
        for size in (16, 32, 64, 128, 256, 512)
        for line in (4, 8, 16, 32, 64)
        if line <= size
    ]
    result = explorer.explore(configs=grid)

    print(f"{'config':>10s} {'miss rate':>10s} {'cycles':>10s} {'energy nJ':>10s}")
    for estimate in result:
        print(
            f"{estimate.config.label():>10s} {estimate.miss_rate:>10.4f} "
            f"{estimate.cycles:>10.0f} {estimate.energy_nj:>10.0f}"
        )

    print(f"\nminimum energy : {result.min_energy()}")
    print(f"minimum time   : {result.min_cycles()}")

    print("\nenergy-time Pareto frontier:")
    for estimate in pareto_front(result.estimates):
        print(f"  {estimate}")


if __name__ == "__main__":
    main()
