"""Section 4.1 walk-through: off-chip data assignment.

Reproduces both worked examples of the paper --

* Compress with a 4-line cache (size 8, line 2): padding the row pitch from
  32 to 36 bytes moves class 2 to cache line 2 and eliminates every
  conflict miss;
* Matrix Addition with line size 2: arrays b and c are padded so the three
  cases occupy consecutive cache lines

-- and verifies the conflict elimination with the trace-driven simulator's
three-C miss classification.

Run with::

    python examples/offchip_layout.py
"""

from repro import CacheSimulator, get_kernel
from repro.cache.simulator import CacheGeometry


def show(kernel_name: str, cache_size: int, line_size: int) -> None:
    kernel = get_kernel(kernel_name)
    print(f"--- {kernel.name} @ cache {cache_size} B, line {line_size} B ---")
    print(f"minimum conflict-free size (Section 3): "
          f"{kernel.min_cache_lines(line_size)} lines = "
          f"{kernel.min_cache_size(line_size)} bytes")

    assignment = kernel.optimized_layout(cache_size, line_size)
    print(f"conflict-free guarantee: {assignment.conflict_free}")
    for name, placement in assignment.layout.placements:
        print(f"  array {name:4s} base={placement.base:<4d} "
              f"pitches={placement.pitches}")
    for ref_index, slot in assignment.slots:
        ref = kernel.nest.refs[ref_index]
        print(f"  class anchored at {ref} -> cache line {slot}")

    geometry = CacheGeometry(cache_size, line_size, 1)
    for label, layout in (
        ("unoptimized", kernel.default_layout()),
        ("optimized", assignment.layout),
    ):
        trace = kernel.trace(layout=layout)
        sim = CacheSimulator(geometry)
        mc = sim.classified_misses(trace)
        stats = CacheSimulator(geometry).run(trace)
        print(
            f"  {label:12s} miss rate={stats.miss_rate:.3f}  "
            f"compulsory={mc.compulsory} capacity={mc.capacity} "
            f"conflict={mc.conflict}"
        )
    print()


def main() -> None:
    show("compress", cache_size=8, line_size=2)
    show("matadd", cache_size=8, line_size=2)
    # The dramatic case: int (4-byte) rows alias a 64-byte cache.
    from repro.kernels import make_compress

    kernel = make_compress(element_size=4)
    geometry = CacheGeometry(64, 8, 1)
    unopt = CacheSimulator(geometry).run(kernel.trace())
    assignment = kernel.optimized_layout(64, 8)
    opt = CacheSimulator(geometry).run(kernel.trace(layout=assignment.layout))
    print("--- compress with int elements @ C64L8 (the Figure 9 baseline) ---")
    print(f"unoptimized miss rate: {unopt.miss_rate:.3f}")
    print(f"optimized miss rate  : {opt.miss_rate:.3f}")


if __name__ == "__main__":
    main()
