"""Section 5 case study: cache exploration for a whole MPEG decoder.

Builds the nine-kernel decoder model, explores a shared cache configuration
space, and shows the paper's closing observation: the decoder-wide
minimum-energy configuration differs both from the minimum-time
configuration and from every kernel's individual optimum.

Run with::

    python examples/mpeg_decoder.py
"""

from repro import CompositeProgram, design_space, mpeg_decoder_kernels


def main() -> None:
    kernels = mpeg_decoder_kernels(macroblocks=8)
    program = CompositeProgram(kernels)
    print("MPEG decoder kernels and trip counts:")
    for kernel in kernels:
        print(
            f"  {kernel.name:10s} trip={program.trips[kernel.name]:4d} "
            f"accesses/invocation={kernel.accesses_per_invocation}"
        )

    configs = list(
        design_space(
            max_size=512,
            min_size=16,
            max_line=16,
            ways=(1, 2, 4, 8),
            tilings=(1, 2, 4, 8, 16),
        )
    )
    print(f"\nexploring {len(configs)} shared configurations ...")
    result = program.explore(configs)

    best_energy = result.min_energy()
    best_time = result.min_cycles()
    print(f"\nwhole-decoder minimum energy: {best_energy}")
    print(f"whole-decoder minimum time  : {best_time}")

    print("\nper-kernel minimum-energy configurations (Figure 10):")
    for name, (config, energy) in program.per_kernel_optima(configs).items():
        marker = "  <- decoder optimum" if config == best_energy.config else ""
        print(f"  {name:10s} {config.label(full=True):>14s} "
              f"{energy:10.0f} nJ{marker}")

    print(
        "\nNote how the decoder-wide optimum need not match any kernel's own "
        "optimum -- the paper's motivation for exploring whole programs."
    )


if __name__ == "__main__":
    main()
