"""Bring your own workload: define a kernel and explore it.

Shows the full public API surface for a workload the paper never shipped:
a direct-form FIR filter.  The loop nest is written in the affine IR, the
Section 3 analysis reports its class structure, and MemExplore picks a
cache for a 5,000-cycle budget.

Run with::

    python examples/custom_kernel.py
"""

from repro import Kernel, MemExplorer, select_configuration
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.reuse import group_references


def make_fir(n_samples: int = 256, taps: int = 16) -> Kernel:
    """y[i] = sum_k h[k] * x[i + k] over a sliding window."""
    i, k = var("i"), var("k")
    nest = LoopNest(
        name="fir16",
        loops=(
            Loop("i", 0, n_samples - taps),
            Loop("k", 0, taps - 1),
        ),
        refs=(
            ArrayRef("x", (i + k,)),
            ArrayRef("h", (k,)),
            ArrayRef("y", (i,), is_write=True),
        ),
        arrays=(
            ArrayDecl("x", (n_samples,)),
            ArrayDecl("h", (taps,)),
            ArrayDecl("y", (n_samples,)),
        ),
        description="direct-form FIR filter, 16 taps",
    )
    return Kernel(nest=nest, source="y[i] += h[k] * x[i+k]")


def main() -> None:
    kernel = make_fir()
    print(f"kernel: {kernel.nest}\n")

    print("Section 3 class structure:")
    for group in group_references(kernel.nest):
        refs = ", ".join(str(kernel.nest.refs[r]) for r in group.ref_indices)
        print(f"  array {group.array:2s}: {refs}")
    for line in (4, 8, 16):
        print(f"  minimum conflict-free cache at L={line}: "
              f"{kernel.min_cache_size(line)} bytes")

    explorer = MemExplorer(kernel)
    result = explorer.explore(max_size=1024, ways=(1, 2), tilings=(1,))
    print(f"\nexplored {len(result)} configurations")
    print(f"minimum energy : {result.min_energy()}")
    print(f"minimum time   : {result.min_cycles()}")

    budget = 5_000.0
    choice = select_configuration(
        result.estimates, "energy", cycle_bound=budget
    )
    print(f"\nwith a {budget:.0f}-cycle budget: {choice}")


if __name__ == "__main__":
    main()
