"""repro-plugin-demo: an out-of-tree plugin distribution for repro.

Installing this package (``pip install examples/plugin_demo``) adds three
components to every repro front end -- the CLI, the exploration service
and the engine -- without touching a single core module:

* backend ``coarse``: set-sampled miss measurement with a wide stride
  (cheap, approximate; inherits the engine's sampling machinery);
* backend ``faulty``: fails every measurement on purpose -- the chaos
  monkey CI uses to prove a broken third-party backend trips the
  service's per-spec circuit breaker without hurting other tenants;
* kernel ``fir16``: a 16-tap FIR filter loop nest, the kind of DSP
  workload the paper's benchmark set does not cover;
* SRAM part ``demo-1Mbit``: a fictional low-energy off-chip part.

Try::

    memexplore plugins
    memexplore explore fir16 --backend coarse --max-size 128
    memexplore submit fir16 --backend coarse --server http://...

The only integration point is the ``repro.plugins`` entry point in
``pyproject.toml``, which names :func:`register` below.
"""

from repro.engine.backends import Backend, SampledBackend
from repro.energy.params import SRAMPart
from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = [
    "make_coarse_backend",
    "make_demo_sram",
    "make_faulty_backend",
    "make_fir16",
    "register",
]

_FIR_SOURCE = """\
int x[n + 16], y[n], h[16];
for i = 0, n - 1:
    for k = 0, 15:
        y[i] += h[k] * x[i + k];
"""


def make_fir16(n: int = 64, element_size: int = 1) -> Kernel:
    """A 16-tap FIR filter over an ``n``-sample window."""
    if n < 1:
        raise ValueError("FIR needs a positive sample count")
    i, k = var("i"), var("k")
    nest = LoopNest(
        name="fir16",
        loops=(Loop("i", 0, n - 1), Loop("k", 0, 15)),
        refs=(
            ArrayRef("h", (k,)),
            ArrayRef("x", (i + k,)),
            ArrayRef("y", (i,), is_write=True),
        ),
        arrays=(
            ArrayDecl("h", (16,), element_size),
            ArrayDecl("x", (n + 16,), element_size),
            ArrayDecl("y", (n,), element_size),
        ),
        description="16-tap FIR filter (plugin demo kernel)",
    )
    return Kernel(nest=nest, source=_FIR_SOURCE)


class CoarseBackend(SampledBackend):
    """Set sampling with a deliberately wide stride: fast, approximate."""

    name = "coarse"

    def __init__(self, sample_every: int = 8, offset: int = 0) -> None:
        super().__init__(sample_every=sample_every, offset=offset)


def make_coarse_backend(**kwargs) -> CoarseBackend:
    """Factory the registry calls for ``--backend coarse``."""
    return CoarseBackend(**kwargs)


class FaultyBackend(Backend):
    """Every measurement raises: a stand-in for a broken plugin.

    Jobs routed through it exhaust the engine's chunk retries and fail;
    after a few consecutive failures the service's circuit breaker for
    that spec opens and later submissions fail fast instead of burning
    worker time -- which is exactly what the ``tenant-smoke`` CI job
    asserts, alongside a healthy tenant finishing undisturbed.
    """

    name = "faulty"
    provides_vector = False

    def measure(self, trace, config):
        raise RuntimeError(
            "faulty backend: injected measurement failure (plugin demo)"
        )


def make_faulty_backend() -> FaultyBackend:
    """Factory the registry calls for ``--backend faulty``."""
    return FaultyBackend()


def make_demo_sram() -> SRAMPart:
    """A fictional 1 Mbit low-energy off-chip part."""
    return SRAMPart(
        name="demo-1Mbit",
        size_bits=1 * 1024 * 1024,
        energy_per_access_nj=4.2,
        access_time_ns=12.0,
    )


def register(hook) -> None:
    """The ``repro.plugins`` entry point: add every component to repro."""
    hook.backend("coarse", make_coarse_backend)
    hook.backend("faulty", make_faulty_backend)
    hook.kernel("fir16", make_fir16)
    hook.sram("demo-1Mbit", make_demo_sram)
