"""Constraint-driven selection and the Em effect (Sections 2-3).

Demonstrates the paper's two selection scenarios -- minimum energy under a
cycle bound, minimum time under an energy bound -- and how swapping the
off-chip SRAM (Em = 2.31 / 4.95 / 43.56 nJ) flips which cache sizes are
energy-efficient.

Run with::

    python examples/energy_time_tradeoff.py
"""

from repro import (
    CacheConfig,
    EnergyModel,
    MemExplorer,
    SRAM_CATALOG,
    get_kernel,
    select_configuration,
)

GRID = [
    CacheConfig(size, line)
    for size in (16, 32, 64, 128, 256, 512)
    for line in (4, 8, 16, 32, 64)
    if line <= size
]


def main() -> None:
    kernel = get_kernel("compress")

    print("=== the Em effect (Figure 1) ===")
    for part_name in ("low-power-2Mbit", "CY7C-2Mbit", "16Mbit"):
        part = SRAM_CATALOG[part_name]
        explorer = MemExplorer(kernel, energy_model=EnergyModel(sram=part))
        result = explorer.explore(configs=GRID)
        best = result.min_energy()
        print(
            f"Em={part.energy_per_access_nj:6.2f} nJ ({part_name:16s}): "
            f"min-energy config = {best.config.label():8s} "
            f"({best.energy_nj:.0f} nJ)"
        )

    print("\n=== bounded selection (Figure 4's narrative) ===")
    explorer = MemExplorer(kernel)
    result = explorer.explore(configs=GRID)
    estimates = result.estimates

    unbounded = select_configuration(estimates, "energy")
    print(f"unconstrained          : {unbounded}")

    cycle_bound = result.min_cycles().cycles * 1.5
    bounded = select_configuration(estimates, "energy", cycle_bound=cycle_bound)
    print(f"time is the constraint : {bounded}")

    energy_bound = unbounded.chosen.energy_nj * 2.0
    fast = select_configuration(estimates, "cycles", energy_bound=energy_bound)
    print(f"energy is the constraint: {fast}")

    chosen = {
        unbounded.chosen.config,
        bounded.chosen.config,
        fast.chosen.config,
    }
    print(
        f"\nThe selections picked {len(chosen)} distinct configurations -- "
        "bounds change the answer, which is the exploration's whole purpose."
    )


if __name__ == "__main__":
    main()
