"""Cache or scratchpad?  The Panda/Dutt question, answered per budget.

The paper explores caches; the line of work it extends (Panda, Dutt,
Nicolau) championed software-managed scratchpads.  This example runs both
models over the same on-chip byte budgets and shows the crossover
structure: under the shared energy model the scratchpad wins energy
outright (Em*L refills never amortise energy), while the cache's automatic
spatial locality wins *cycles* until the scratchpad can hold the working
set -- at which point the scratchpad takes both metrics.

Run with::

    python examples/cache_vs_scratchpad.py
"""

from repro.kernels import make_dequant, make_matadd
from repro.spm.allocation import allocate_arrays
from repro.spm.explorer import compare_cache_vs_spm

BUDGETS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def show(kernel) -> None:
    print(f"=== {kernel.name} ===")
    total = sum(decl.size_bytes for decl in kernel.nest.arrays)
    print(f"array footprint: {total} bytes "
          f"({', '.join(f'{d.name}={d.size_bytes}' for d in kernel.nest.arrays)})")
    print(
        f"{'budget':>8s} {'cache nJ':>10s} {'spm nJ':>9s} {'spm hit':>8s} "
        f"{'cache cyc':>10s} {'spm cyc':>9s} {'E':>6s} {'time':>6s}  mapped"
    )
    for row in compare_cache_vs_spm(kernel, budgets=BUDGETS):
        allocation = allocate_arrays(kernel, row.budget)
        print(
            f"{row.budget:>8d} {row.cache.energy_nj:>10.0f} "
            f"{row.spm.energy_nj:>9.0f} {row.spm.hit_fraction:>8.3f} "
            f"{row.cache.cycles:>10.0f} {row.spm.cycles:>9.0f} "
            f"{row.energy_winner:>6s} {row.cycle_winner:>6s}  "
            f"{','.join(allocation.mapped) or '-'}"
        )
    print()


def main() -> None:
    show(make_matadd())
    show(make_dequant())
    print(
        "Reading the tables: the scratchpad's cycle count collapses to one "
        "cycle per iteration exactly when the arrays fit -- Panda/Dutt's "
        "crossover -- while the cache is the only option that helps at all "
        "when the working set cannot fit on chip."
    )


if __name__ == "__main__":
    main()
