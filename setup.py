"""Setup shim for environments without the ``wheel`` package.

``pyproject.toml`` carries all metadata; this file only enables legacy
``pip install -e . --no-use-pep517`` installs on offline machines where
PEP 517 build isolation cannot fetch its build dependencies.
"""

from setuptools import setup

setup()
